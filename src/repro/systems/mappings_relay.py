"""The Section 6.4 mapping hierarchy for the signal relay.

For ``1 ≤ k ≤ n−1``, the mapping ``f_k : B_k → B_{k−1}`` requires

    ``u.Lt(k−1, n) ≥  s.Lt(k, n)``                    if some flag in ``k+1 … n`` is up
    ``              ≥ s.Lt(SIGNAL_k) + (n−k)·d2``     if ``FLAG_k`` is up
    ``              ≥ ∞``                             otherwise

(and dually ``u.Ft(k−1, n) ≤ s.Ft(k, n)`` /
``s.Ft(SIGNAL_k) + (n−k)·d1`` / ``0``), with every *shared* condition's
prediction equal between ``u`` and ``s``.

Two "trivial" projections close the chain:
``time(Ã, b̃) → B_{n−1}`` renames the boundmap condition of
``SIGNAL_n`` to ``U_{n−1,n}``, and ``B_0 → B`` forgets the boundmap
conditions.  The full composition (Corollary 6.3) witnesses
Theorem 6.4.
"""

from __future__ import annotations

import math
from typing import List

from repro.core.mappings import (
    InequalityMapping,
    MappingChain,
    ProjectionMapping,
    StrongPossibilitiesMapping,
)
from repro.core.time_state import TimeState
from repro.systems.signal_relay import (
    RelaySystem,
    flags_of,
    signal_class_name,
)

__all__ = [
    "level_mapping",
    "entry_mapping",
    "exit_mapping",
    "relay_hierarchy",
]


def level_mapping(system: RelaySystem, k: int) -> InequalityMapping:
    """``f_k : B_k → B_{k−1}`` (Section 6.4)."""
    n = system.params.n
    d1 = system.params.d1
    d2 = system.params.d2
    source = system.intermediate(k)
    target = system.intermediate(k - 1)
    source_u = system.condition_name(k)
    target_u = system.condition_name(k - 1)
    shared = [signal_class_name(j) for j in range(k)] + ["NULL"]

    def required_bounds(s: TimeState):
        flags = flags_of(s.astate)
        if any(flags[i] for i in range(k + 1, n + 1)):
            return source.lt(s, source_u), source.ft(s, source_u)
        if flags[k]:
            return (
                source.lt(s, signal_class_name(k)) + (n - k) * d2,
                source.ft(s, signal_class_name(k)) + (n - k) * d1,
            )
        return math.inf, 0

    def predicate(u: TimeState, s: TimeState) -> bool:
        for name in shared:
            if u.preds[target.index_of(name)] != s.preds[source.index_of(name)]:
                return False
        need_lt, need_ft = required_bounds(s)
        return target.lt(u, target_u) >= need_lt and target.ft(u, target_u) <= need_ft

    def explain(u: TimeState, s: TimeState) -> str:
        problems = []
        for name in shared:
            u_pred = u.preds[target.index_of(name)]
            s_pred = s.preds[source.index_of(name)]
            if u_pred != s_pred:
                problems.append(
                    "shared {} differs: {!r} vs {!r}".format(name, u_pred, s_pred)
                )
        need_lt, need_ft = required_bounds(s)
        if target.lt(u, target_u) < need_lt:
            problems.append(
                "Lt({}) = {!r} < required {!r}".format(
                    target_u, target.lt(u, target_u), need_lt
                )
            )
        if target.ft(u, target_u) > need_ft:
            problems.append(
                "Ft({}) = {!r} > allowed {!r}".format(
                    target_u, target.ft(u, target_u), need_ft
                )
            )
        return "; ".join(problems) or "inequalities hold (?)"

    return InequalityMapping(
        source=source,
        target=target,
        predicate=predicate,
        name="f_{}: B_{} -> B_{}".format(k, k, k - 1),
        explain=explain,
    )


def entry_mapping(system: RelaySystem) -> ProjectionMapping:
    """The trivial mapping ``time(Ã, b̃) → B_{n−1}``: the boundmap
    condition of class ``SIGNAL_n`` *is* ``U_{n−1,n}`` (same trigger
    steps, same interval), so it is renamed; everything else maps by
    name."""
    n = system.params.n
    return ProjectionMapping(
        source=system.algorithm,
        target=system.intermediate(n - 1),
        name_map={system.condition_name(n - 1): signal_class_name(n)},
        name="trivial: time(A~,b~) -> B_{}".format(n - 1),
    )


def exit_mapping(system: RelaySystem) -> ProjectionMapping:
    """The trivial mapping ``B_0 → B``: forget the boundmap conditions,
    keep ``U_{0,n}``."""
    return ProjectionMapping(
        source=system.intermediate(0),
        target=system.requirements,
        name="trivial: B_0 -> B",
    )


def relay_hierarchy(system: RelaySystem) -> MappingChain:
    """The full chain ``time(Ã, b̃) → B_{n−1} → … → B_0 → B`` whose
    composition is the Corollary 6.3 mapping."""
    mappings: List[StrongPossibilitiesMapping] = [entry_mapping(system)]
    for k in range(system.params.n - 1, 0, -1):
        mappings.append(level_mapping(system, k))
    mappings.append(exit_mapping(system))
    return MappingChain(mappings)
