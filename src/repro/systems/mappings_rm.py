"""The Section 4.3 strong possibilities mapping for the resource
manager.

A state ``u`` of the requirements automaton ``B`` is in ``f(s)``
exactly when (with ``TIMER`` taken from the shared ``A``-state):

- ``TIMER > 0``:
    ``min(Lt(G1), Lt(G2)) ≥ Lt(TICK) + (TIMER − 1)·c2 + l`` and
    ``max(Ft(G1), Ft(G2)) ≤ Ft(TICK) + (TIMER − 1)·c1``;
- ``TIMER = 0``:
    ``min(Lt(G1), Lt(G2)) ≥ Lt(LOCAL)`` and
    ``max(Ft(G1), Ft(G2)) ≤ Ct``.

The right-hand sides read off *how* the bound will be met: a tick within
``Lt(TICK)``, then ``TIMER − 1`` more ticks of at most ``c2`` each, then
a ``GRANT`` within ``l`` (and symmetrically for the lower bound).
"""

from __future__ import annotations

from repro.core.mappings import InequalityMapping
from repro.core.time_state import TimeState
from repro.systems.resource_manager import ResourceManagerSystem, timer_of

__all__ = ["resource_manager_mapping", "resource_manager_mapping_over"]


def resource_manager_mapping(system: ResourceManagerSystem) -> InequalityMapping:
    """The mapping ``f : time(A, b) → B`` of Section 4.3."""
    return resource_manager_mapping_over(
        system.algorithm, system.requirements, system.params
    )


def resource_manager_mapping_over(
    algorithm, requirements, params
) -> InequalityMapping:
    """The same mapping over an explicit (algorithm, requirements,
    params) triple.  The fault-injection harness uses this to check a
    *perturbed* algorithm automaton against the *nominal* requirements
    and constants — a robust-refinement question the bundled
    :func:`resource_manager_mapping` cannot pose."""
    c1 = params.c1
    c2 = params.c2
    l = params.l

    def bounds(u: TimeState, s: TimeState):
        min_lt = min(requirements.lt(u, "G1"), requirements.lt(u, "G2"))
        max_ft = max(requirements.ft(u, "G1"), requirements.ft(u, "G2"))
        timer = timer_of(s.astate)
        if timer > 0:
            need_lt = algorithm.lt(s, "TICK") + (timer - 1) * c2 + l
            need_ft = algorithm.ft(s, "TICK") + (timer - 1) * c1
        else:
            need_lt = algorithm.lt(s, "LOCAL")
            need_ft = s.now
        return min_lt, max_ft, need_lt, need_ft

    def predicate(u: TimeState, s: TimeState) -> bool:
        min_lt, max_ft, need_lt, need_ft = bounds(u, s)
        return min_lt >= need_lt and max_ft <= need_ft

    def explain(u: TimeState, s: TimeState) -> str:
        min_lt, max_ft, need_lt, need_ft = bounds(u, s)
        problems = []
        if min_lt < need_lt:
            problems.append(
                "min(Lt(G1), Lt(G2)) = {!r} < required {!r}".format(min_lt, need_lt)
            )
        if max_ft > need_ft:
            problems.append(
                "max(Ft(G1), Ft(G2)) = {!r} > allowed {!r}".format(max_ft, need_ft)
            )
        return "; ".join(problems) or "inequalities hold (?)"

    return InequalityMapping(
        source=algorithm,
        target=requirements,
        predicate=predicate,
        name="f: time(A,b) -> B (Section 4.3)",
        explain=explain,
    )
