"""Extensions discussed (but not worked out) in the paper's Section 8:
the interrupt-driven manager variant (footnote 7), a request/response
system closed by an environment automaton, and heterogeneous event
chains generalising the signal relay."""

from repro.systems.extensions.chain import (
    EVENT,
    ChainSystem,
    event_class_name,
    partial_sum_interval,
)
from repro.systems.extensions.fischer import (
    CRITICAL,
    ENTER,
    EXIT,
    FischerParams,
    IDLE,
    RETRY,
    SET,
    SETTING,
    TRY,
    WAITING,
    critical_processes,
    fischer_automaton,
    fischer_system,
    mutual_exclusion_violated,
)
from repro.systems.extensions.interrupt_manager import (
    interrupt_manager_automaton,
    interrupt_resource_manager,
)
from repro.systems.extensions.peterson import (
    PetersonParams,
    both_critical,
    peterson_automaton,
    peterson_system,
    someone_critical,
)
from repro.systems.extensions.tournament import (
    TournamentParams,
    critical_count,
    tournament_automaton,
    tournament_mutex_violated,
    tournament_system,
)
from repro.systems.extensions.request_grant import (
    REPLY,
    REQUEST,
    RequestGrantParams,
    request_grant_system,
    requester_automaton,
    responder_automaton,
    response_condition,
)

__all__ = [
    "EVENT",
    "ChainSystem",
    "event_class_name",
    "partial_sum_interval",
    "interrupt_manager_automaton",
    "interrupt_resource_manager",
    "REQUEST",
    "REPLY",
    "RequestGrantParams",
    "requester_automaton",
    "responder_automaton",
    "request_grant_system",
    "response_condition",
    "TournamentParams",
    "tournament_automaton",
    "tournament_system",
    "tournament_mutex_violated",
    "critical_count",
    "PetersonParams",
    "peterson_automaton",
    "peterson_system",
    "both_critical",
    "someone_critical",
    "FischerParams",
    "fischer_automaton",
    "fischer_system",
    "critical_processes",
    "mutual_exclusion_violated",
    "TRY",
    "SET",
    "ENTER",
    "RETRY",
    "EXIT",
    "IDLE",
    "SETTING",
    "WAITING",
    "CRITICAL",
]
