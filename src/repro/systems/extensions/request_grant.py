"""A request/response resource manager (paper Section 8 discussion).

The conclusions note that realistic managers respond to *requests*, and
that request-triggered requirements ("respond within ``l`` as long as
requests do not arrive too close together") fit the timing-condition
format with a step trigger.  This extension closes such a system:

- a *requester* whose ``REQUEST`` output fires with inter-request times
  in ``[r1, r2]``;
- a *responder* that raises ``PENDING`` on ``REQUEST`` and issues
  ``REPLY`` (class ``SERVE``, bound ``[0, l]``) while pending.

With the separation assumption ``r1 > l``, every ``REQUEST`` finds the
responder idle and the condition

    ``R: (∅, {steps with π = REQUEST}) --[0, l]--> ({REPLY}, ∅)``

holds.  The point of the extension is methodological: a *step-triggered*
timing condition on a system closed by an explicit environment
automaton, exactly the shape the conclusions say realistic managers
need.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AutomatonError
from repro.ioa.actions import Act, Kind
from repro.ioa.composition import compose
from repro.ioa.guarded import ActionSpec, GuardedAutomaton
from repro.ioa.partition import Partition
from repro.timed.boundmap import Boundmap, TimedAutomaton
from repro.timed.conditions import TimingCondition
from repro.timed.interval import Interval

__all__ = [
    "REQUEST",
    "REPLY",
    "RequestGrantParams",
    "requester_automaton",
    "responder_automaton",
    "request_grant_system",
    "response_condition",
]

REQUEST = Act("REQUEST")
REPLY = Act("REPLY")


@dataclass(frozen=True)
class RequestGrantParams:
    """Inter-request bound ``[r1, r2]`` and service bound ``[0, l]``;
    the response requirement assumes ``r1 > l`` (requests never pile
    up)."""

    r1: object
    r2: object
    l: object

    def __post_init__(self) -> None:
        if not (0 < self.r1 <= self.r2):
            raise AutomatonError("need 0 < r1 <= r2")
        if self.l <= 0:
            raise AutomatonError("need l > 0")

    @property
    def well_separated(self) -> bool:
        return self.r1 > self.l

    @property
    def response_interval(self) -> Interval:
        """The requirement bound ``[0, l]`` on REQUEST→REPLY."""
        return Interval(0, self.l)


def requester_automaton() -> GuardedAutomaton:
    """One-state environment issuing ``REQUEST`` forever."""
    return GuardedAutomaton(
        name="requester",
        start=["idle"],
        specs=[ActionSpec(REQUEST, Kind.OUTPUT)],
        partition=Partition.from_pairs([("REQ", [REQUEST])]),
    )


def responder_automaton() -> GuardedAutomaton:
    """PENDING flag raised by ``REQUEST``, cleared by ``REPLY``."""
    return GuardedAutomaton(
        name="responder",
        start=[False],
        specs=[
            ActionSpec(REQUEST, Kind.INPUT, effect=lambda _pending: True),
            ActionSpec(
                REPLY,
                Kind.OUTPUT,
                precondition=lambda pending: pending,
                effect=lambda _pending: False,
            ),
        ],
        partition=Partition.from_pairs([("SERVE", [REPLY])]),
    )


def request_grant_system(params: RequestGrantParams) -> TimedAutomaton:
    """The closed system ``requester ∥ responder`` with
    ``REQ ↦ [r1, r2]`` and ``SERVE ↦ [0, l]``."""
    composed = compose(requester_automaton(), responder_automaton(), name="request-grant")
    boundmap = Boundmap(
        {
            "REQ": Interval(params.r1, params.r2),
            "SERVE": Interval(0, params.l),
        }
    )
    return TimedAutomaton(composed, boundmap)


def response_condition(params: RequestGrantParams) -> TimingCondition:
    """``R``: from every ``REQUEST`` step to the next ``REPLY`` within
    ``[0, l]`` — sound exactly when requests are well separated."""
    return TimingCondition.after_action(
        "R", params.response_interval, REQUEST, [REPLY]
    )
