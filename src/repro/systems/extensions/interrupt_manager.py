"""The interrupt-driven manager variant (paper Section 4, footnote 7).

The paper's manager polls: even when ``TIMER ≤ 0`` the ``GRANT`` waits
for the manager's next local step, so ``ELSE`` keeps the ``LOCAL``
class busy.  The footnote sketches the alternative in which the manager
is *interrupt-driven*: ``ELSE`` is omitted, the ``LOCAL`` class is
enabled only when a grant is due, and its bound starts counting at
enablement.  The two automata have slightly different timing
properties; experiment E10's ablation measures both exactly.
"""

from __future__ import annotations

from repro.ioa.actions import Kind
from repro.ioa.composition import compose, hide
from repro.ioa.guarded import ActionSpec, GuardedAutomaton
from repro.ioa.partition import Partition
from repro.timed.boundmap import Boundmap, TimedAutomaton
from repro.timed.interval import Interval
from repro.systems.resource_manager import (
    GRANT,
    TICK,
    ResourceManagerParams,
    clock_automaton,
)

__all__ = ["interrupt_manager_automaton", "interrupt_resource_manager"]


def interrupt_manager_automaton(k: int) -> GuardedAutomaton:
    """The manager with the ``ELSE`` action omitted: ``LOCAL`` contains
    only ``GRANT`` and is enabled exactly when ``TIMER ≤ 0``."""
    return GuardedAutomaton(
        name="interrupt-manager",
        start=[k],
        specs=[
            ActionSpec(TICK, Kind.INPUT, effect=lambda timer: timer - 1),
            ActionSpec(
                GRANT,
                Kind.OUTPUT,
                precondition=lambda timer: timer <= 0,
                effect=lambda _timer: k,
            ),
        ],
        partition=Partition.from_pairs([("LOCAL", [GRANT])]),
    )


def interrupt_resource_manager(params: ResourceManagerParams) -> TimedAutomaton:
    """The footnote-7 timed automaton: same clock, interrupt-driven
    manager, same bounds (``TICK ↦ [c1, c2]``, ``LOCAL ↦ [0, l]``)."""
    composed = compose(
        clock_automaton(),
        interrupt_manager_automaton(params.k),
        name="interrupt-resource-manager",
    )
    hidden = hide(composed, [TICK])
    boundmap = Boundmap(
        {
            "TICK": Interval(params.c1, params.c2),
            "LOCAL": Interval(0, params.l),
        }
    )
    return TimedAutomaton(hidden, boundmap)
