"""The Peterson–Fischer tournament mutual exclusion ([PF77]).

The paper's conclusions name this algorithm as *the* example to try
next, noting that its recurrence-style time analysis in [LG89] makes it
a natural candidate for hierarchical treatment.  ``n = 2^h`` processes
run a single-elimination tournament of 2-process Peterson instances:
process ``i`` competes at its leaf node, climbs to the parent on
winning, and owns the critical section after winning the root; exiting
releases the nodes top-down.

State layout (one guarded automaton, like the other mutex models):

- per tree node (heap indices ``1 … n−1``): ``(flag_a, flag_b, turn)``;
- per process: a program counter —
  ``("climb", level, phase)`` with phase ∈ {set_flag, set_turn,
  waiting}, ``("critical",)``, ``("release", level)`` (from the top
  level down), or ``("done",)`` / back to level 0 when ``repeat``.

Timing: all of a process's competition steps share class ``STEP_i``
(bound ``[s1, s2]``); its first release step ends the critical section
(class ``CS_i``, bound ``[0, e]``).

The winner needs three steps per level, so the contention bound
generalises the Peterson result: first entry no earlier than
``3h·s1``; the exact upper end (zone engine, experiment E16) shows the
loser-interference cost per level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Tuple

from repro.errors import AutomatonError
from repro.ioa.actions import Act, Kind
from repro.ioa.guarded import ActionSpec, GuardedAutomaton
from repro.ioa.partition import Partition
from repro.timed.boundmap import Boundmap, TimedAutomaton
from repro.timed.interval import INFINITY, Interval

__all__ = [
    "SETFLAG",
    "SETTURN",
    "ADVANCE",
    "TEST",
    "RELEASE",
    "TournamentParams",
    "tournament_automaton",
    "tournament_system",
    "critical_count",
    "tournament_mutex_violated",
]


def SETFLAG(i: int, level: int) -> Act:
    return Act("SETFLAG", (i, level))


def SETTURN(i: int, level: int) -> Act:
    return Act("SETTURN", (i, level))


def ADVANCE(i: int, level: int) -> Act:
    """Process ``i`` wins its node at ``level`` (the top-level ADVANCE
    enters the critical section)."""
    return Act("ADVANCE", (i, level))


def TEST(i: int, level: int) -> Act:
    return Act("TEST", (i, level))


def RELEASE(i: int, level: int) -> Act:
    return Act("RELEASE", (i, level))


SET_FLAG = "set_flag"
SET_TURN = "set_turn"
WAITING = "waiting"


@dataclass(frozen=True)
class TournamentParams:
    """``n = 2^h`` processes; step bound ``[s1, s2]``; critical-section
    bound ``[0, e]``; ``repeat`` loops processes back after exiting."""

    n: int
    s1: object
    s2: object
    e: object = INFINITY
    repeat: bool = False

    def __post_init__(self) -> None:
        if self.n < 2 or self.n & (self.n - 1):
            raise AutomatonError("the tournament needs n = 2^h >= 2 processes")
        if not (0 <= self.s1 <= self.s2) or self.s2 <= 0:
            raise AutomatonError("need 0 <= s1 <= s2, s2 > 0")
        if self.e <= 0:
            raise AutomatonError("need e > 0")

    @property
    def height(self) -> int:
        return self.n.bit_length() - 1

    @property
    def step_interval(self) -> Interval:
        return Interval(self.s1, self.s2)


# State: (nodes, pcs) with nodes a tuple of (flag_a, flag_b, turn) for
# heap indices 1 … n−1 (stored at positions 0 … n−2) and pcs a tuple of
# per-process program counters.


def _node_of(params: TournamentParams, i: int, level: int) -> int:
    """Heap index of process ``i``'s node at ``level`` (0 = leaf)."""
    return (params.n + i) >> (level + 1)


def _side_of(params: TournamentParams, i: int, level: int) -> int:
    """Which slot (0 = a, 1 = b) process ``i`` occupies at ``level``."""
    return ((params.n + i) >> level) & 1


def _node_state(state, node: int):
    return state[0][node - 1]


def _with_node(state, node: int, value):
    nodes, pcs = state
    nodes = nodes[: node - 1] + (value,) + nodes[node:]
    return (nodes, pcs)


def _with_pc(state, i: int, pc):
    nodes, pcs = state
    pcs = pcs[:i] + (pc,) + pcs[i + 1 :]
    return (nodes, pcs)


def tournament_automaton(params: TournamentParams) -> GuardedAutomaton:
    height = params.height
    specs: List[ActionSpec] = []
    partition_pairs: List[Tuple[str, List[Hashable]]] = []
    for i in range(params.n):
        step_actions: List[Hashable] = []
        for level in range(height):
            node = _node_of(params, i, level)
            side = _side_of(params, i, level)
            other = 1 - side

            def setflag_pre(state, i=i, level=level):
                return state[1][i] == ("climb", level, SET_FLAG)

            def setflag_eff(state, i=i, level=level, node=node, side=side):
                fa, fb, turn = _node_state(state, node)
                flags = [fa, fb]
                flags[side] = True
                state = _with_node(state, node, (flags[0], flags[1], turn))
                return _with_pc(state, i, ("climb", level, SET_TURN))

            def setturn_pre(state, i=i, level=level):
                return state[1][i] == ("climb", level, SET_TURN)

            def setturn_eff(state, i=i, level=level, node=node, other=other):
                fa, fb, _turn = _node_state(state, node)
                state = _with_node(state, node, (fa, fb, other))
                return _with_pc(state, i, ("climb", level, WAITING))

            def may_pass(state, node=node, side=side, other=other):
                fa, fb, turn = _node_state(state, node)
                return not (fa, fb)[other] or turn == side

            def advance_pre(state, i=i, level=level, node=node, side=side, other=other):
                return state[1][i] == ("climb", level, WAITING) and may_pass(
                    state, node, side, other
                )

            def advance_eff(state, i=i, level=level, height=height):
                if level + 1 == height:
                    return _with_pc(state, i, ("critical",))
                return _with_pc(state, i, ("climb", level + 1, SET_FLAG))

            def test_pre(state, i=i, level=level, node=node, side=side, other=other):
                return state[1][i] == ("climb", level, WAITING) and not may_pass(
                    state, node, side, other
                )

            def release_pre(state, i=i, level=level):
                return state[1][i] == ("release", level)

            def release_eff(state, i=i, level=level, node=node, side=side,
                            repeat=params.repeat):
                fa, fb, turn = _node_state(state, node)
                flags = [fa, fb]
                flags[side] = False
                state = _with_node(state, node, (flags[0], flags[1], turn))
                if level == 0:
                    next_pc = ("climb", 0, SET_FLAG) if repeat else ("done",)
                else:
                    next_pc = ("release", level - 1)
                return _with_pc(state, i, next_pc)

            specs.extend(
                [
                    ActionSpec(SETFLAG(i, level), Kind.OUTPUT,
                               precondition=setflag_pre, effect=setflag_eff),
                    ActionSpec(SETTURN(i, level), Kind.OUTPUT,
                               precondition=setturn_pre, effect=setturn_eff),
                    ActionSpec(ADVANCE(i, level), Kind.OUTPUT,
                               precondition=advance_pre, effect=advance_eff),
                    ActionSpec(TEST(i, level), Kind.INTERNAL,
                               precondition=test_pre),
                ]
            )
            step_actions.extend(
                [SETFLAG(i, level), SETTURN(i, level), ADVANCE(i, level), TEST(i, level)]
            )
            if level < height - 1:
                # Releases below the top level (the top node is released
                # by the critical-section exit action below); the pc
                # walks ("release", height−2) … ("release", 0).
                specs.append(
                    ActionSpec(RELEASE(i, level), Kind.OUTPUT,
                               precondition=release_pre, effect=release_eff)
                )
                step_actions.append(RELEASE(i, level))

        # The top-level release ends the critical section (class CS_i);
        # it is triggered from the critical pc.
        top = height - 1

        def exit_pre(state, i=i):
            return state[1][i] == ("critical",)

        def exit_eff(state, i=i, top=top, params=params):
            node = _node_of(params, i, top)
            side = _side_of(params, i, top)
            fa, fb, turn = _node_state(state, node)
            flags = [fa, fb]
            flags[side] = False
            state = _with_node(state, node, (flags[0], flags[1], turn))
            if top == 0:
                next_pc = ("climb", 0, SET_FLAG) if params.repeat else ("done",)
            else:
                next_pc = ("release", top - 1)
            return _with_pc(state, i, next_pc)

        specs.append(
            ActionSpec(RELEASE(i, top + 1), Kind.OUTPUT,
                       precondition=exit_pre, effect=exit_eff)
        )
        partition_pairs.append(("STEP_{}".format(i), step_actions))
        partition_pairs.append(("CS_{}".format(i), [RELEASE(i, top + 1)]))

    nodes = tuple((False, False, 0) for _ in range(params.n - 1))
    pcs = tuple(("climb", 0, SET_FLAG) for _ in range(params.n))
    return GuardedAutomaton(
        name="tournament-{}".format(params.n),
        start=[(nodes, pcs)],
        specs=specs,
        partition=Partition.from_pairs(partition_pairs),
    )


def tournament_system(params: TournamentParams) -> TimedAutomaton:
    bounds = {}
    for i in range(params.n):
        bounds["STEP_{}".format(i)] = params.step_interval
        bounds["CS_{}".format(i)] = Interval(0, params.e)
    return TimedAutomaton(tournament_automaton(params), Boundmap(bounds))


def critical_count(state) -> int:
    """How many processes hold the critical section."""
    return sum(1 for pc in state[1] if pc == ("critical",))


def tournament_mutex_violated(state) -> bool:
    return critical_count(state) >= 2
