"""Heterogeneous event chains (paper Section 8, the "π triggers φ
triggers ψ" example).

The conclusions ask whether requirements like "``π`` is followed by
``φ`` within ``[a1, a2]`` and ``φ`` by ``ψ`` within ``[b1, b2]``" fit
the framework.  They do, compositionally: model the chain as a relay
line with *per-stage* bound intervals; the end-to-end requirement is the
Minkowski sum of the stage intervals, and the Section 6 hierarchy
generalises verbatim with ``U_{k,m}`` carrying the partial sums.

This module builds that generalised chain — the signal relay is the
special case of equal stage intervals — together with its intermediate
automata and level mappings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import AutomatonError
from repro.ioa.actions import Act, Kind
from repro.ioa.composition import compose
from repro.ioa.guarded import ActionSpec, GuardedAutomaton
from repro.ioa.partition import Partition
from repro.timed.boundmap import Boundmap, TimedAutomaton
from repro.timed.conditions import TimingCondition, cond_of_class
from repro.timed.interval import INFINITY, Interval
from repro.core.dummification import dummify, dummify_condition
from repro.core.mappings import (
    InequalityMapping,
    MappingChain,
    ProjectionMapping,
    StrongPossibilitiesMapping,
)
from repro.core.time_automaton import (
    PredictiveTimeAutomaton,
    time_of_boundmap,
    time_of_conditions,
)
from repro.core.time_state import TimeState

__all__ = ["EVENT", "event_class_name", "ChainSystem", "partial_sum_interval"]


def EVENT(i: int) -> Act:
    """The ``i``-th chain event (``EVENT_0`` starts the chain)."""
    return Act("EVENT", (i,))


def event_class_name(i: int) -> str:
    return "EVENT_{}".format(i)


def partial_sum_interval(stage_intervals: Sequence[Interval], k: int) -> Interval:
    """``U_{k,m}``'s bound: the Minkowski sum of stages ``k+1 … m``."""
    remaining = stage_intervals[k:]
    if not remaining:
        raise AutomatonError("no stages after k = {}".format(k))
    total = remaining[0]
    for interval in remaining[1:]:
        total = total + interval
    return total


class ChainSystem:
    """A line ``E_0 → E_1 → … → E_m`` with stage ``i`` (the hop from
    ``EVENT_{i-1}`` to ``EVENT_i``) bounded by ``stage_intervals[i-1]``.

    Provides the same artifacts as :class:`~repro.systems.signal_relay.
    RelaySystem` — dummified automaton, ``time(Ã, b̃)``, requirements
    automaton, intermediates ``B_k`` and the mapping hierarchy — but for
    heterogeneous per-stage bounds.
    """

    def __init__(
        self,
        stage_intervals: Sequence[Interval],
        dummy_interval: Interval = Interval(0, 1),
    ):
        if not stage_intervals:
            raise AutomatonError("a chain needs at least one stage")
        self.stages: Tuple[Interval, ...] = tuple(stage_intervals)
        self.m = len(self.stages)
        self.timed = self._build_timed()
        self.dummified = dummify(self.timed, dummy_interval)
        self.algorithm: PredictiveTimeAutomaton = time_of_boundmap(self.dummified)
        self.requirement = dummify_condition(self._condition(0))
        self.requirements: PredictiveTimeAutomaton = time_of_conditions(
            self.dummified.automaton, [self.requirement], name="chain-B"
        )
        self._intermediates: Dict[int, PredictiveTimeAutomaton] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build_timed(self) -> TimedAutomaton:
        head = GuardedAutomaton(
            name="E0",
            start=[True],
            specs=[
                ActionSpec(
                    EVENT(0),
                    Kind.OUTPUT,
                    precondition=lambda flag: flag,
                    effect=lambda _flag: False,
                )
            ],
            partition=Partition.from_pairs([(event_class_name(0), [EVENT(0)])]),
        )
        processes = [head]
        for i in range(1, self.m + 1):
            processes.append(
                GuardedAutomaton(
                    name="E{}".format(i),
                    start=[False],
                    specs=[
                        ActionSpec(EVENT(i - 1), Kind.INPUT, effect=lambda _flag: True),
                        ActionSpec(
                            EVENT(i),
                            Kind.OUTPUT,
                            precondition=lambda flag: flag,
                            effect=lambda _flag: False,
                        ),
                    ],
                    partition=Partition.from_pairs(
                        [(event_class_name(i), [EVENT(i)])]
                    ),
                )
            )
        composed = compose(*processes, name="event-chain")
        bounds = {event_class_name(0): Interval(0, INFINITY)}
        for i in range(1, self.m + 1):
            bounds[event_class_name(i)] = self.stages[i - 1]
        return TimedAutomaton(composed, Boundmap(bounds))

    def _condition(self, k: int) -> TimingCondition:
        return TimingCondition.after_action(
            "U[{},{}]".format(k, self.m),
            partial_sum_interval(self.stages, k),
            EVENT(k),
            [EVENT(self.m)],
        )

    def condition_name(self, k: int) -> str:
        return "U[{},{}]".format(k, self.m)

    def _class_condition(self, class_name: str) -> TimingCondition:
        cls = self.dummified.automaton.partition[class_name]
        return cond_of_class(self.dummified, cls)

    def intermediate(self, k: int) -> PredictiveTimeAutomaton:
        """``B_k`` for the heterogeneous chain."""
        if not (0 <= k <= self.m - 1):
            raise AutomatonError("B_k is defined for 0 <= k <= m-1")
        if k not in self._intermediates:
            conditions: List[TimingCondition] = [dummify_condition(self._condition(k))]
            for j in range(k + 1):
                conditions.append(self._class_condition(event_class_name(j)))
            conditions.append(self._class_condition("NULL"))
            self._intermediates[k] = time_of_conditions(
                self.dummified.automaton, conditions, name="chain-B_{}".format(k)
            )
        return self._intermediates[k]

    # ------------------------------------------------------------------
    # Mappings
    # ------------------------------------------------------------------

    def level_mapping(self, k: int) -> InequalityMapping:
        """``f_k : B_k → B_{k−1}`` with the heterogeneous partial sums
        in place of ``(n−k)·d``."""
        source = self.intermediate(k)
        target = self.intermediate(k - 1)
        source_u = self.condition_name(k)
        target_u = self.condition_name(k - 1)
        remaining = partial_sum_interval(self.stages, k)
        shared = [event_class_name(j) for j in range(k)] + ["NULL"]
        m = self.m

        def required_bounds(s: TimeState):
            flags = s.astate[0]
            if any(flags[i] for i in range(k + 1, m + 1)):
                return source.lt(s, source_u), source.ft(s, source_u)
            if flags[k]:
                return (
                    source.lt(s, event_class_name(k)) + remaining.hi,
                    source.ft(s, event_class_name(k)) + remaining.lo,
                )
            return math.inf, 0

        def predicate(u: TimeState, s: TimeState) -> bool:
            for name in shared:
                if u.preds[target.index_of(name)] != s.preds[source.index_of(name)]:
                    return False
            need_lt, need_ft = required_bounds(s)
            return (
                target.lt(u, target_u) >= need_lt and target.ft(u, target_u) <= need_ft
            )

        return InequalityMapping(
            source=source,
            target=target,
            predicate=predicate,
            name="chain f_{}".format(k),
        )

    def hierarchy(self) -> MappingChain:
        """``time(Ã, b̃) → B_{m−1} → … → B_0 → B``."""
        mappings: List[StrongPossibilitiesMapping] = [
            ProjectionMapping(
                source=self.algorithm,
                target=self.intermediate(self.m - 1),
                name_map={self.condition_name(self.m - 1): event_class_name(self.m)},
                name="chain entry",
            )
        ]
        for k in range(self.m - 1, 0, -1):
            mappings.append(self.level_mapping(k))
        mappings.append(
            ProjectionMapping(
                source=self.intermediate(0),
                target=self.requirements,
                name="chain exit",
            )
        )
        return MappingChain(mappings)
