"""Peterson's 2-process mutual exclusion with step-time bounds.

The paper's conclusions single out the (Peterson–Fischer) mutual
exclusion family as the natural next target for the method, citing the
recurrence-style time analysis of [LG89].  This module provides the
2-process Peterson algorithm in that setting:

- shared state: ``flag[1], flag[2]`` and ``turn``;
- process ``i``: ``SETFLAG_i`` (``flag[i] := True``), ``SETTURN_i``
  (``turn := other``), then repeated checks — ``ENTER_i`` when
  ``flag[other]`` is down or ``turn = i``, else a busy-wait ``TEST_i`` —
  and ``EXIT_i`` (``flag[i] := False``) from the critical section;
- timing: each process's steps (class ``STEP_i``) take ``[s1, s2]``;
  the critical section (class ``CS_i``) is bounded by ``[0, e]``.

Peterson is *asynchronous*: mutual exclusion holds regardless of the
bounds (checked exhaustively).  The timing question — how long until
*someone* enters when both compete — is exactly the kind of contention
bound [LG89] derives by recurrences; here the zone engine answers it
exactly (see experiment E15).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Tuple

from repro.errors import AutomatonError
from repro.ioa.actions import Act, Kind
from repro.ioa.guarded import ActionSpec, GuardedAutomaton
from repro.ioa.partition import Partition
from repro.timed.boundmap import Boundmap, TimedAutomaton
from repro.timed.interval import INFINITY, Interval

__all__ = [
    "SETFLAG",
    "SETTURN",
    "ENTER",
    "TEST",
    "EXIT",
    "PetersonParams",
    "PetersonState",
    "peterson_automaton",
    "peterson_system",
    "both_critical",
    "someone_critical",
]


def SETFLAG(i: int) -> Act:
    return Act("SETFLAG", (i,))


def SETTURN(i: int) -> Act:
    return Act("SETTURN", (i,))


def ENTER(i: int) -> Act:
    return Act("ENTER", (i,))


def TEST(i: int) -> Act:
    return Act("TEST", (i,))


def EXIT(i: int) -> Act:
    return Act("EXIT", (i,))


#: Program-counter phases.
SET_FLAG = "set_flag"
SET_TURN = "set_turn"
WAITING = "waiting"
CRITICAL = "critical"
DONE = "done"


@dataclass(frozen=True)
class PetersonParams:
    """Per-step bound ``[s1, s2]`` and critical-section bound ``[0, e]``.

    ``repeat`` selects whether processes loop back to competing after
    exiting (the steady-state protocol) or stop after one critical
    section (the contention-analysis variant, whose zone graph is a
    DAG and whose first-entry bound is the [LG89]-style quantity).
    """

    s1: object
    s2: object
    e: object = INFINITY
    repeat: bool = False

    def __post_init__(self) -> None:
        if not (0 <= self.s1 <= self.s2):
            raise AutomatonError("need 0 <= s1 <= s2")
        if self.s2 <= 0:
            raise AutomatonError("need s2 > 0")
        if self.e <= 0:
            raise AutomatonError("need e > 0")

    @property
    def step_interval(self) -> Interval:
        return Interval(self.s1, self.s2)


#: State: (flag1, flag2, turn, pc1, pc2); turn ∈ {1, 2}.
PetersonState = Tuple[bool, bool, int, str, str]

_FLAG = {1: 0, 2: 1}
_PC = {1: 3, 2: 4}


def _get(state: PetersonState, field: int):
    return state[field]


def _put(state: PetersonState, field: int, value) -> PetersonState:
    return state[:field] + (value,) + state[field + 1 :]


def peterson_automaton(params: PetersonParams) -> GuardedAutomaton:
    """Both processes start competing (pc = set_flag)."""
    specs: List[ActionSpec] = []
    partition_pairs: List[Tuple[str, List[Hashable]]] = []
    for i in (1, 2):
        other = 3 - i

        def setflag_pre(state, i=i):
            return _get(state, _PC[i]) == SET_FLAG

        def setflag_eff(state, i=i):
            return _put(_put(state, _FLAG[i], True), _PC[i], SET_TURN)

        def setturn_pre(state, i=i):
            return _get(state, _PC[i]) == SET_TURN

        def setturn_eff(state, i=i, other=other):
            return _put(_put(state, 2, other), _PC[i], WAITING)

        def may_enter(state, i=i, other=other):
            return not _get(state, _FLAG[other]) or _get(state, 2) == i

        def enter_pre(state, i=i, other=other):
            return _get(state, _PC[i]) == WAITING and may_enter(state, i, other)

        def enter_eff(state, i=i):
            return _put(state, _PC[i], CRITICAL)

        def test_pre(state, i=i, other=other):
            return _get(state, _PC[i]) == WAITING and not may_enter(state, i, other)

        def exit_pre(state, i=i):
            return _get(state, _PC[i]) == CRITICAL

        def exit_eff(state, i=i, repeat=params.repeat):
            next_pc = SET_FLAG if repeat else DONE
            return _put(_put(state, _FLAG[i], False), _PC[i], next_pc)

        specs.extend(
            [
                ActionSpec(SETFLAG(i), Kind.OUTPUT, precondition=setflag_pre,
                           effect=setflag_eff),
                ActionSpec(SETTURN(i), Kind.OUTPUT, precondition=setturn_pre,
                           effect=setturn_eff),
                ActionSpec(ENTER(i), Kind.OUTPUT, precondition=enter_pre,
                           effect=enter_eff),
                ActionSpec(TEST(i), Kind.INTERNAL, precondition=test_pre),
                ActionSpec(EXIT(i), Kind.OUTPUT, precondition=exit_pre,
                           effect=exit_eff),
            ]
        )
        partition_pairs.extend(
            [
                (
                    "STEP_{}".format(i),
                    [SETFLAG(i), SETTURN(i), ENTER(i), TEST(i)],
                ),
                ("CS_{}".format(i), [EXIT(i)]),
            ]
        )
    start: PetersonState = (False, False, 1, SET_FLAG, SET_FLAG)
    return GuardedAutomaton(
        name="peterson",
        start=[start],
        specs=specs,
        partition=Partition.from_pairs(partition_pairs),
    )


def peterson_system(params: PetersonParams) -> TimedAutomaton:
    """``(A, b)``: steps in ``[s1, s2]`` per process, critical sections
    in ``[0, e]``."""
    bounds = {}
    for i in (1, 2):
        bounds["STEP_{}".format(i)] = params.step_interval
        bounds["CS_{}".format(i)] = Interval(0, params.e)
    return TimedAutomaton(peterson_automaton(params), Boundmap(bounds))


def both_critical(state: PetersonState) -> bool:
    """The mutual-exclusion bad-state predicate."""
    return state[3] == CRITICAL and state[4] == CRITICAL


def someone_critical(state: PetersonState) -> bool:
    return state[3] == CRITICAL or state[4] == CRITICAL
