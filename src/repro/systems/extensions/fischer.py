"""Fischer's timed mutual exclusion (the paper's Section 8 direction).

The conclusions call for applying the method to real timing-based
algorithms; Fischer's protocol is the canonical one.  Each process
loops::

    idle:     TRY_i    (only when the shared variable x = 0)    — anytime
    setting:  SET_i    (x := i)                 within [0, a] of TRY_i
    waiting:  ENTER_i  (if x = i, go critical)  within [b, 2b] of SET_i
              RETRY_i  (if x ≠ i, back to idle)     —  same window
    critical: EXIT_i   (x := 0)                 within [0, e], e = ∞ by default

With unbounded critical sections (``e = ∞``, the textbook setting)
mutual exclusion is a pure *timing* property: it holds exactly when the
wait-before-check exceeds the maximum set delay, i.e. ``b > a`` (with
the model's closed bounds, ``b = a`` already admits a same-instant
interleaving that breaks it).  The zone engine decides both directions
exactly (:func:`repro.zones.analysis.find_reachable_state`) — and also
exposes a subtler fact: with a *bounded* critical section, some
``a ≥ b`` configurations become safe again, because the late setter's
mandatory wait ``b`` outlives the first process's stay (safe when
``e < b`` even for ``a > b``).

The whole system is modelled as one guarded automaton over the state
``(x, pc_1 … pc_n)`` — composition with an explicit shared-variable
component would force read/write handshakes the paper's formalism does
not need here — with one partition class per (process, phase) pair so
each phase carries its own boundmap interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Tuple

from repro.errors import AutomatonError
from repro.ioa.actions import Act, Kind
from repro.ioa.guarded import ActionSpec, GuardedAutomaton
from repro.ioa.partition import Partition
from repro.timed.boundmap import Boundmap, TimedAutomaton
from repro.timed.interval import INFINITY, Interval

__all__ = [
    "TRY",
    "SET",
    "ENTER",
    "RETRY",
    "EXIT",
    "FischerParams",
    "IDLE",
    "SETTING",
    "WAITING",
    "CRITICAL",
    "fischer_automaton",
    "fischer_system",
    "critical_processes",
    "mutual_exclusion_violated",
]

IDLE = "idle"
SETTING = "setting"
WAITING = "waiting"
CRITICAL = "critical"


def TRY(i: int) -> Act:
    return Act("TRY", (i,))


def SET(i: int) -> Act:
    return Act("SET", (i,))


def ENTER(i: int) -> Act:
    return Act("ENTER", (i,))


def RETRY(i: int) -> Act:
    return Act("RETRY", (i,))


def EXIT(i: int) -> Act:
    return Act("EXIT", (i,))


@dataclass(frozen=True)
class FischerParams:
    """``n`` processes; set delay ``[0, a]``, check delay ``[b, 2b]``,
    critical-section bound ``[0, e]`` (``e = ∞`` for the textbook
    unbounded critical section).  With ``e = ∞``, mutual exclusion holds
    iff ``b > a``."""

    n: int
    a: object
    b: object
    e: object = INFINITY
    #: Start every process already in its setting phase — the
    #: contention-analysis variant (the unconstrained TRY phase would
    #: otherwise make absolute entry times unbounded).
    contending: bool = False

    def __post_init__(self) -> None:
        if self.n < 2:
            raise AutomatonError("Fischer needs at least two processes")
        if self.a <= 0 or self.b <= 0 or self.e <= 0:
            raise AutomatonError("delays must be positive")

    @property
    def safe(self) -> bool:
        """The textbook (``e = ∞``) safety condition for this
        closed-bound model."""
        return self.b > self.a


def _state(x: int, pcs: Tuple[str, ...]):
    return (x, pcs)


def _set_pc(state, i: int, pc: str, x: int = None):
    value, pcs = state
    pcs = pcs[: i - 1] + (pc,) + pcs[i:]
    return (value if x is None else x, pcs)


def fischer_automaton(params: FischerParams) -> GuardedAutomaton:
    """The whole protocol as one guarded automaton."""
    specs: List[ActionSpec] = []
    partition_pairs: List[Tuple[str, List[Hashable]]] = []
    for i in range(1, params.n + 1):
        index = i  # bind per-iteration

        def try_pre(state, i=index):
            x, pcs = state
            return pcs[i - 1] == IDLE and x == 0

        def try_eff(state, i=index):
            return _set_pc(state, i, SETTING)

        def set_pre(state, i=index):
            _x, pcs = state
            return pcs[i - 1] == SETTING

        def set_eff(state, i=index):
            return _set_pc(state, i, WAITING, x=i)

        def enter_pre(state, i=index):
            x, pcs = state
            return pcs[i - 1] == WAITING and x == i

        def enter_eff(state, i=index):
            return _set_pc(state, i, CRITICAL)

        def retry_pre(state, i=index):
            x, pcs = state
            return pcs[i - 1] == WAITING and x != i

        def retry_eff(state, i=index):
            return _set_pc(state, i, IDLE)

        def exit_pre(state, i=index):
            _x, pcs = state
            return pcs[i - 1] == CRITICAL

        def exit_eff(state, i=index):
            return _set_pc(state, i, IDLE, x=0)

        specs.extend(
            [
                ActionSpec(TRY(i), Kind.OUTPUT, precondition=try_pre, effect=try_eff),
                ActionSpec(SET(i), Kind.OUTPUT, precondition=set_pre, effect=set_eff),
                ActionSpec(
                    ENTER(i), Kind.OUTPUT, precondition=enter_pre, effect=enter_eff
                ),
                ActionSpec(
                    RETRY(i), Kind.OUTPUT, precondition=retry_pre, effect=retry_eff
                ),
                ActionSpec(
                    EXIT(i), Kind.OUTPUT, precondition=exit_pre, effect=exit_eff
                ),
            ]
        )
        partition_pairs.extend(
            [
                ("TRY_{}".format(i), [TRY(i)]),
                ("SET_{}".format(i), [SET(i)]),
                ("CHECK_{}".format(i), [ENTER(i), RETRY(i)]),
                ("EXIT_{}".format(i), [EXIT(i)]),
            ]
        )
    initial_pc = SETTING if params.contending else IDLE
    start = _state(0, tuple(initial_pc for _ in range(params.n)))
    return GuardedAutomaton(
        name="fischer-{}".format(params.n),
        start=[start],
        specs=specs,
        partition=Partition.from_pairs(partition_pairs),
    )


def fischer_system(params: FischerParams) -> TimedAutomaton:
    """``(A, b)`` for Fischer's protocol."""
    bounds = {}
    for i in range(1, params.n + 1):
        bounds["TRY_{}".format(i)] = Interval(0, INFINITY)
        bounds["SET_{}".format(i)] = Interval(0, params.a)
        bounds["CHECK_{}".format(i)] = Interval(params.b, 2 * params.b)
        bounds["EXIT_{}".format(i)] = Interval(0, params.e)
    return TimedAutomaton(fischer_automaton(params), Boundmap(bounds))


def critical_processes(state) -> int:
    """How many processes are in their critical section."""
    _x, pcs = state
    return sum(1 for pc in pcs if pc == CRITICAL)


def mutual_exclusion_violated(state) -> bool:
    """The bad-state predicate for safety checks."""
    return critical_processes(state) >= 2
