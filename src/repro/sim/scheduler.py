"""Discrete-event generation of executions of ``time(A, U)``.

The simulator walks the predictive automaton: at each state it collects
the schedulable actions and their time windows (which already respect
every ``Ft`` lower bound and every ``Lt`` deadline), lets a
:class:`~repro.sim.strategies.Strategy` choose the next timed action,
and appends the step.  Every produced run is, by construction, an
execution of ``time(A, U)``; its projection is therefore a timed
semi-execution of ``(A, U)`` (Lemma 3.2), and growing prefixes
approximate the admissible infinite executions (Lemma 3.1).

A state with a finite deadline but no schedulable action means the
modelled system cannot meet its own timing conditions; the simulator
raises :class:`SchedulingDeadlockError` rather than silently stopping.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Hashable, Optional

from repro.errors import SchedulingDeadlockError
from repro.obs import instrument as _telemetry
from repro.timed.timed_sequence import TimedSequence
from repro.core.time_automaton import PredictiveTimeAutomaton
from repro.core.time_state import TimeState
from repro.sim.strategies import Strategy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults uses sim)
    from repro.faults.budget import Budget

__all__ = ["Simulator", "simulate"]


class Simulator:
    """Generates runs of a :class:`PredictiveTimeAutomaton`."""

    def __init__(self, automaton: PredictiveTimeAutomaton, strategy: Strategy):
        self.automaton = automaton
        self.strategy = strategy

    def run(
        self,
        max_steps: int,
        horizon=None,
        start_astate: Optional[Hashable] = None,
        from_state: Optional[TimeState] = None,
        budget: Optional["Budget"] = None,
    ) -> TimedSequence:
        """Produce a run of up to ``max_steps`` events.

        Stops early when model time passes ``horizon``, or when the
        automaton is quiescent (no schedulable action *and* no pending
        deadline).  ``from_state`` continues from an arbitrary state
        (used by the completeness estimators); otherwise the run begins
        in the start state over ``start_astate`` (default: the unique
        start state of the base automaton).

        A ``budget`` caps the number of steps and the wall time: on
        exhaustion the run produced so far is returned (a valid, partial
        execution) and ``budget.exhausted`` tells the caller why it is
        short.
        """
        rec = _telemetry._ACTIVE
        state = self._initial_state(start_astate, from_state)
        run = TimedSequence.initial(state)
        reason = "max_steps"
        for _ in range(max_steps):
            if budget is not None and not budget.charge_step():
                reason = "budget"
                break  # partial run; budget.exhausted explains the cut
            if horizon is not None and state.now >= horizon:
                reason = "horizon"
                break
            options = self.automaton.schedulable_actions(state)
            if not options:
                deadline = self.automaton.deadline(state)
                if math.isinf(deadline):
                    reason = "quiescent"
                    break  # quiescent: nothing to do, no obligation pending
                expired = ", ".join(
                    cond.name
                    for cond, pred in zip(self.automaton.conditions, state.preds)
                    if pred.lt == deadline
                )
                if rec is not None:
                    rec.event(
                        "sim.deadlock",
                        automaton=self.automaton.name,
                        state=repr(state),
                        condition=expired or None,
                        deadline=deadline,
                        steps=len(run.events),
                    )
                raise SchedulingDeadlockError(
                    "{}: no schedulable action in {!r} but deadline {!r} of "
                    "{} is pending".format(
                        self.automaton.name, state, deadline, expired or "<unknown>"
                    ),
                    state=state,
                    condition=expired or None,
                    deadline=deadline,
                )
            action, t = self.strategy.choose(state, options)
            if rec is not None:
                rec.incr("sim.steps")
                for cond, pred in zip(self.automaton.conditions, state.preds):
                    lt = pred.lt
                    if not (isinstance(lt, float) and math.isinf(lt)):
                        rec.gauge("sim.slack." + cond.name, lt - t)
                rec.event("sim.step", action=action, time=t)
            posts = self.automaton.successors(state, action, t)
            if not posts:
                if rec is not None:
                    rec.event(
                        "sim.deadlock",
                        automaton=self.automaton.name,
                        state=repr(state),
                        condition=None,
                        deadline=None,
                        action=action,
                        time=t,
                        steps=len(run.events),
                    )
                raise SchedulingDeadlockError(
                    "{}: strategy chose infeasible step ({!r}, {!r}) in "
                    "{!r}".format(self.automaton.name, action, t, state),
                    state=state,
                )
            state = self.strategy.pick_post(posts)
            run = run.extend(action, t, state)
        if rec is not None:
            rec.event("sim.end", reason=reason, steps=len(run.events), now=state.now)
        return run

    def _initial_state(
        self, start_astate: Optional[Hashable], from_state: Optional[TimeState]
    ) -> TimeState:
        if from_state is not None:
            return from_state
        if start_astate is not None:
            return self.automaton.initial(start_astate)
        starts = list(self.automaton.base.start_states())
        if len(starts) != 1:
            raise SchedulingDeadlockError(
                "{} has {} start states; pass start_astate".format(
                    self.automaton.base.name, len(starts)
                )
            )
        return self.automaton.initial(starts[0])


def simulate(
    automaton: PredictiveTimeAutomaton,
    strategy: Strategy,
    max_steps: int,
    horizon=None,
) -> TimedSequence:
    """One-shot convenience wrapper around :class:`Simulator`."""
    return Simulator(automaton, strategy).run(max_steps=max_steps, horizon=horizon)
