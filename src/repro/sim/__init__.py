"""Simulation substrate: strategies and the discrete-event scheduler
that generate executions of ``time(A, U)`` automata."""

from repro.sim.scheduler import Simulator, simulate
from repro.sim.strategies import (
    BiasedActionStrategy,
    EagerStrategy,
    ExtremalStrategy,
    LazyStrategy,
    Strategy,
    UniformStrategy,
)
from repro.sim.trace import RunBatch, run_batch, timed_behavior_of_run

__all__ = [
    "Simulator",
    "simulate",
    "Strategy",
    "UniformStrategy",
    "EagerStrategy",
    "LazyStrategy",
    "ExtremalStrategy",
    "BiasedActionStrategy",
    "RunBatch",
    "run_batch",
    "timed_behavior_of_run",
]
