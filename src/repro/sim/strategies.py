"""Scheduling strategies for generating timed executions.

A strategy resolves the nondeterminism of ``time(A, U)``: which enabled
action fires next, and at what time inside its window.  All strategies
are deterministic functions of a seeded :class:`random.Random`, so every
experiment is reproducible; times are kept exact by sampling on a
rational sub-grid of the window rather than with floats.
"""

from __future__ import annotations

import math
import random
from fractions import Fraction
from typing import Hashable, List, Optional, Sequence, Tuple

from repro.errors import SchedulingDeadlockError

__all__ = [
    "Strategy",
    "UniformStrategy",
    "EagerStrategy",
    "LazyStrategy",
    "ExtremalStrategy",
    "BiasedActionStrategy",
]

#: One schedulable option: (action, earliest time, latest time).
Option = Tuple[Hashable, object, object]


class Strategy:
    """Base class: choose an (action, time) pair among the options.

    ``unbounded_extension`` caps how far past the earliest time a
    strategy may schedule when the window's upper end is infinite:
    a window ``[lo, ∞)`` is treated *deterministically* as
    ``[lo, lo + unbounded_extension]``.  Consequences, relied on by
    tests and by the fault-injection harness:

    - :class:`LazyStrategy` fires an unbounded action exactly at
      ``lo + unbounded_extension`` (never "infinitely late");
    - :class:`ExtremalStrategy`'s high endpoint for an unbounded window
      is ``lo + unbounded_extension``;
    - the cap is relative to each window's own ``lo``, so the same
      strategy object behaves identically across re-enables — runs
      remain deterministic functions of the seed.

    The extension must be a positive exact number (int or Fraction).
    """

    def __init__(self, rng: Optional[random.Random] = None, unbounded_extension=1):
        self.rng = rng or random.Random(0)
        if isinstance(unbounded_extension, float) and not math.isfinite(
            unbounded_extension
        ):
            raise ValueError("unbounded_extension must be finite")
        if unbounded_extension <= 0:
            raise ValueError(
                "unbounded_extension must be positive, got {!r}".format(
                    unbounded_extension
                )
            )
        self.unbounded_extension = unbounded_extension

    def choose(self, state, options: Sequence[Option]) -> Tuple[Hashable, object]:
        """Pick the next timed action.  ``options`` is never empty."""
        raise NotImplementedError

    def pick_post(self, posts: Sequence) -> object:
        """Resolve base-automaton nondeterminism (default: random)."""
        if len(posts) == 1:
            return posts[0]
        return self.rng.choice(list(posts))

    def _cap(self, lo, hi):
        """A finite latest time for a possibly unbounded window."""
        if isinstance(hi, float) and math.isinf(hi):
            return lo + self.unbounded_extension
        return hi


class UniformStrategy(Strategy):
    """Uniform choice of action, and of a time among the multiples of an
    absolute ``quantum`` inside the window (plus the window endpoints).

    Sampling on an absolute grid keeps exact-arithmetic denominators
    bounded over arbitrarily long runs, and always offers the window
    boundaries, where timing bounds are attained.
    """

    def __init__(
        self,
        rng: Optional[random.Random] = None,
        quantum=Fraction(1, 16),
        unbounded_extension=1,
    ):
        super().__init__(rng, unbounded_extension)
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self.quantum = Fraction(quantum)

    def choose(self, state, options: Sequence[Option]) -> Tuple[Hashable, object]:
        from repro.core.discretize import grid_times

        action, lo, hi = self.rng.choice(list(options))
        hi = self._cap(lo, hi)
        if hi == lo:
            return action, lo
        candidates = [lo, hi]
        candidates.extend(grid_times(lo, hi, self.quantum))
        return action, self.rng.choice(candidates)


class EagerStrategy(Strategy):
    """Drive executions toward the *lower* ends of the paper's bounds.

    Rule: among the schedulable actions pick the one whose window opens
    latest (ties broken randomly) — the "progress" action everything
    else is waiting for — and fire it at the window's earliest instant.
    When that earliest instant is the current time (a zero-lower-bound
    filler like the manager's ``ELSE``), fire at the window's *latest*
    time instead: firing such actions at the current instant forever is
    a Zeno loop that keeps lower-bounded actions unschedulable, whereas
    pushing them forward releases the next real event at its minimum.
    """

    def choose(self, state, options: Sequence[Option]) -> Tuple[Hashable, object]:
        now = getattr(state, "now", None)
        latest_opening = max(lo for _a, lo, _h in options)
        candidates = [opt for opt in options if opt[1] == latest_opening]
        action, lo, hi = self.rng.choice(candidates)
        if now is not None and lo == now:
            return action, self._cap(lo, hi)
        return action, lo


class LazyStrategy(Strategy):
    """Always fire as late as the windows permit; drives executions
    toward the *upper* ends of the paper's bounds."""

    def choose(self, state, options: Sequence[Option]) -> Tuple[Hashable, object]:
        capped: List[Tuple[Hashable, object]] = [
            (a, self._cap(lo, hi)) for a, lo, hi in options
        ]
        latest = max(t for _a, t in capped)
        candidates = [(a, t) for a, t in capped if t == latest]
        return self.rng.choice(candidates)


class ExtremalStrategy(Strategy):
    """Jump to a window endpoint, chosen at random per step.

    Timing bounds are attained at extremes of the per-step windows, so
    this strategy finds the tight ends of measured intervals far faster
    than uniform sampling.
    """

    def __init__(
        self,
        rng: Optional[random.Random] = None,
        p_low: float = 0.5,
        unbounded_extension=1,
    ):
        super().__init__(rng, unbounded_extension)
        self.p_low = p_low

    def choose(self, state, options: Sequence[Option]) -> Tuple[Hashable, object]:
        action, lo, hi = self.rng.choice(list(options))
        hi = self._cap(lo, hi)
        if self.rng.random() < self.p_low:
            return action, lo
        return action, hi


class BiasedActionStrategy(Strategy):
    """Wrap another strategy but prefer actions matching a predicate
    (e.g. always let the dummy starve, or prioritise TICKs), falling
    back to the full option list when none matches."""

    def __init__(self, inner: Strategy, prefer, rng: Optional[random.Random] = None):
        super().__init__(rng or inner.rng, inner.unbounded_extension)
        self.inner = inner
        self.prefer = prefer

    def choose(self, state, options: Sequence[Option]) -> Tuple[Hashable, object]:
        preferred = [opt for opt in options if self.prefer(opt[0])]
        return self.inner.choose(state, preferred or options)

    def pick_post(self, posts: Sequence) -> object:
        return self.inner.pick_post(posts)
