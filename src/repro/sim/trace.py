"""Trace utilities: turning simulator runs into timed behaviors and
batched experiment data.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Hashable, List, Optional, Sequence, Tuple

from repro.ioa.automaton import IOAutomaton
from repro.timed.timed_sequence import TimedEvent, TimedSequence
from repro.core.projection import project
from repro.core.time_automaton import PredictiveTimeAutomaton
from repro.sim.scheduler import Simulator
from repro.sim.strategies import Strategy

__all__ = ["timed_behavior_of_run", "RunBatch", "run_batch"]


def timed_behavior_of_run(
    base: IOAutomaton, run: TimedSequence
) -> Tuple[TimedEvent, ...]:
    """The timed behavior of a simulator run: external (action, time)
    pairs of the projected timed execution."""
    projected = project(run)
    return projected.timed_behavior(base.signature.is_external)


@dataclass
class RunBatch:
    """A batch of seeded runs plus their projected behaviors."""

    runs: List[TimedSequence] = field(default_factory=list)
    behaviors: List[Tuple[TimedEvent, ...]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.runs)

    def event_count(self) -> int:
        return sum(len(run) for run in self.runs)


def run_batch(
    automaton: PredictiveTimeAutomaton,
    strategy_factory: Callable[[random.Random], Strategy],
    seeds: Sequence[int],
    max_steps: int,
    horizon=None,
) -> RunBatch:
    """Run one simulation per seed and collect runs + behaviors.

    ``strategy_factory`` receives a seeded :class:`random.Random` so the
    whole batch is reproducible from the seed list.
    """
    batch = RunBatch()
    for seed in seeds:
        strategy = strategy_factory(random.Random(seed))
        run = Simulator(automaton, strategy).run(max_steps=max_steps, horizon=horizon)
        batch.runs.append(run)
        batch.behaviors.append(timed_behavior_of_run(automaton.base, run))
    return batch
