"""Static diagnostics for timed-automaton specifications.

The paper's method rests on well-formed inputs: a boundmap assigning a
valid interval to *every* partition class (Definition 2.1), timing
conditions whose trigger/disabling sets satisfy the Section 2.3
technical requirements, and mappings whose endpoints share the
underlying ``A`` (Definition 3.2).  This package validates all of that
*before* execution, so a misspelt class name or an inverted interval is
a pre-flight ``ERROR`` with a rule id and a fix hint instead of a
mid-simulation :class:`~repro.errors.TimingConditionError`.

Quickstart::

    from repro.lint import lint_timed_automaton
    report = lint_timed_automaton(timed)
    if report.has_errors:
        print(report.render())

CLI: ``python -m repro lint {rm,relay,...,all} [--json] [--strict]``.
Rule ids and paper citations are documented in ``docs/linting.md``.
"""

from repro.lint.diagnostics import Diagnostic, LintReport, Severity
from repro.lint.registry import Rule, all_rules, get_rule, rule, rules_for
from repro.lint.driver import (
    DEFAULT_MAX_STATES,
    lint_boundmap,
    lint_chain,
    lint_conditions,
    lint_mapping,
    lint_system,
    lint_timed_automaton,
)
from repro.lint.targets import SystemTarget, build_all_targets, build_target, system_names

__all__ = [
    "Severity",
    "Diagnostic",
    "LintReport",
    "Rule",
    "rule",
    "all_rules",
    "rules_for",
    "get_rule",
    "DEFAULT_MAX_STATES",
    "lint_boundmap",
    "lint_timed_automaton",
    "lint_conditions",
    "lint_mapping",
    "lint_chain",
    "lint_system",
    "SystemTarget",
    "system_names",
    "build_target",
    "build_all_targets",
]
