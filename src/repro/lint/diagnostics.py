"""Diagnostics emitted by the static lint pass.

A :class:`Diagnostic` is one finding: a rule id, a severity, a location
string (``"rm/boundmap"``, ``"relay/conditions"``, …), a human-readable
message and an optional fix hint.  A :class:`LintReport` is an ordered
collection with the filtering and rendering helpers the CLI and the
self-check tests need.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = ["Severity", "Diagnostic", "LintReport"]


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so ``ERROR > WARNING > INFO``."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:  # "ERROR", not "Severity.ERROR"
        return self.name


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding."""

    rule: str
    severity: Severity
    location: str
    message: str
    hint: str = ""

    def to_dict(self) -> Dict[str, str]:
        """JSON-ready representation (severity as its name)."""
        return {
            "rule": self.rule,
            "severity": self.severity.name,
            "location": self.location,
            "message": self.message,
            "hint": self.hint,
        }

    def render(self) -> str:
        """One human-readable line: ``ERROR R001 [loc] message (fix: …)``."""
        line = "{:<7} {} [{}] {}".format(
            str(self.severity), self.rule, self.location, self.message
        )
        if self.hint:
            line += " (fix: {})".format(self.hint)
        return line

    def __str__(self) -> str:
        return self.render()


class LintReport:
    """An ordered, appendable collection of diagnostics."""

    def __init__(self, diagnostics: Iterable[Diagnostic] = ()):
        self._diagnostics: List[Diagnostic] = list(diagnostics)

    # ------------------------------------------------------------------
    # Collection protocol
    # ------------------------------------------------------------------

    def add(self, diagnostic: Diagnostic) -> None:
        self._diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self._diagnostics.extend(diagnostics)

    def merged(self, other: "LintReport") -> "LintReport":
        return LintReport(self._diagnostics + other._diagnostics)

    @property
    def diagnostics(self) -> Tuple[Diagnostic, ...]:
        return tuple(self._diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self._diagnostics)

    def __len__(self) -> int:
        return len(self._diagnostics)

    def __bool__(self) -> bool:
        """Truthy when the report is *clean of errors* (usable as a
        pre-flight gate: ``if not lint_system(t): abort``)."""
        return not self.has_errors

    # ------------------------------------------------------------------
    # Filtering
    # ------------------------------------------------------------------

    def by_severity(self, severity: Severity) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self._diagnostics if d.severity is severity)

    @property
    def errors(self) -> Tuple[Diagnostic, ...]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> Tuple[Diagnostic, ...]:
        return self.by_severity(Severity.WARNING)

    @property
    def infos(self) -> Tuple[Diagnostic, ...]:
        return self.by_severity(Severity.INFO)

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self._diagnostics)

    def by_rule(self, rule_id: str) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self._diagnostics if d.rule == rule_id)

    def max_severity(self) -> Optional[Severity]:
        if not self._diagnostics:
            return None
        return max(d.severity for d in self._diagnostics)

    def fails(self, strict: bool = False) -> bool:
        """Gate verdict: errors always fail; warnings fail under
        ``strict``."""
        worst = self.max_severity()
        if worst is None:
            return False
        return worst >= (Severity.WARNING if strict else Severity.ERROR)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def summary(self) -> Dict[str, int]:
        counts = {"ERROR": 0, "WARNING": 0, "INFO": 0}
        for diagnostic in self._diagnostics:
            counts[diagnostic.severity.name] += 1
        return counts

    def sorted_diagnostics(self) -> Tuple[Diagnostic, ...]:
        """Diagnostics in the canonical deterministic order — by
        (rule, location, severity, message) — used for both rendering
        and ``--json`` output so CI diffs and cached verdicts are
        stable regardless of rule execution order."""
        return tuple(
            sorted(
                self._diagnostics,
                key=lambda d: (d.rule, d.location, -int(d.severity), d.message),
            )
        )

    def render(self) -> str:
        """Human-readable multi-line report (canonical order, then a
        one-line summary)."""
        lines = [d.render() for d in self.sorted_diagnostics()]
        counts = self.summary()
        lines.append(
            "{} diagnostic(s): {} error(s), {} warning(s), {} info".format(
                len(self._diagnostics),
                counts["ERROR"],
                counts["WARNING"],
                counts["INFO"],
            )
        )
        return "\n".join(lines)

    def to_dicts(self) -> List[Dict[str, str]]:
        return [d.to_dict() for d in self.sorted_diagnostics()]

    def to_json(self, **extra) -> str:
        payload = dict(extra)
        payload["diagnostics"] = self.to_dicts()
        payload["summary"] = self.summary()
        return json.dumps(payload, indent=2, sort_keys=True)

    def __repr__(self) -> str:
        counts = self.summary()
        return "<LintReport errors={} warnings={} infos={}>".format(
            counts["ERROR"], counts["WARNING"], counts["INFO"]
        )
