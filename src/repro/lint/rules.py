"""The concrete lint rules.

Every rule is a generator registered with
:func:`repro.lint.registry.rule`; the drivers in
:mod:`repro.lint.driver` feed it the matching context object
(:class:`~repro.lint.driver.BoundmapContext`,
:class:`~repro.lint.driver.TimedContext`, …).  Rule ids are stable and
documented, one by one, in ``docs/linting.md``.

Overview (see the docs for paper citations):

========  =========================================================
R001      boundmap misses partition classes (Definition 2.1)
R002      boundmap names unknown partition classes
R003      invalid bound interval (lo > hi, lo < 0, lo = ∞, hi = 0)
R004      inexact (float) bound endpoints
R005      trivial ``[0, ∞]`` class bound — ``cond(C)`` is vacuous
R006      timing condition targets no action of the automaton
R007      trigger/disabling overlap (the paper's two requirements)
R008      partition class never enabled in bounded exploration
R009      dummy ``NULL`` class left untimed / not upper-bounded
R010      mapping endpoints disagree on the underlying ``A``
R011      mapping chain levels do not share intermediate automata
R012      input action disabled in a reachable state
R013      timing condition never activated in bounded exploration
R014      fragile bounds: a small drift already breaks the proofs
========  =========================================================
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterable, List, Optional, Tuple

from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import rule

__all__ = ["coverage_diagnostics", "endpoints_of"]


# ----------------------------------------------------------------------
# Shared helpers (also reused outside the registry, e.g. by
# Boundmap.validate_against for eager construction-time validation)
# ----------------------------------------------------------------------


def coverage_diagnostics(
    partition_names: Iterable[str],
    bound_names: Iterable[str],
    location: str = "boundmap",
) -> List[Diagnostic]:
    """R001/R002 as a plain function: compare a partition's class names
    with a boundmap's keys and report both directions of mismatch."""
    names = set(partition_names)
    bounds = set(bound_names)
    diagnostics: List[Diagnostic] = []
    for missing in sorted(names - bounds):
        diagnostics.append(
            Diagnostic(
                rule="R001",
                severity=Severity.ERROR,
                location=location,
                message="partition class {!r} has no bound interval".format(missing),
                hint="add a [b_l, b_u] entry for {!r} (Definition 2.1 requires "
                "a bound for every class)".format(missing),
            )
        )
    for extra in sorted(bounds - names):
        diagnostics.append(
            Diagnostic(
                rule="R002",
                severity=Severity.ERROR,
                location=location,
                message="bound entry {!r} names no partition class".format(extra),
                hint="remove the entry or rename it to one of {!r}".format(
                    sorted(names)
                ),
            )
        )
    return diagnostics


def endpoints_of(value) -> Optional[Tuple[object, object]]:
    """The (lo, hi) endpoints of a bound entry: an
    :class:`~repro.timed.interval.Interval` or a raw 2-sequence.
    Returns None when the shape is not recognisable."""
    from repro.timed.interval import Interval

    if isinstance(value, Interval):
        return (value.lo, value.hi)
    if isinstance(value, (tuple, list)) and len(value) == 2:
        return (value[0], value[1])
    return None


def _is_number(value) -> bool:
    return isinstance(value, (int, float, Fraction)) and not isinstance(value, bool)


def _is_inexact(value) -> bool:
    return isinstance(value, float) and not math.isinf(value)


# ----------------------------------------------------------------------
# Boundmap rules
# ----------------------------------------------------------------------


@rule(
    "R001",
    targets="boundmap",
    title="boundmap misses partition classes",
    paper="Definition 2.1",
)
def boundmap_missing_classes(ctx):
    if ctx.partition_names is None:
        return
    for diagnostic in coverage_diagnostics(
        ctx.partition_names, ctx.bound_names(), ctx.location
    ):
        if diagnostic.rule == "R001":
            yield diagnostic


@rule(
    "R002",
    targets="boundmap",
    title="boundmap names unknown partition classes",
    paper="Definition 2.1",
)
def boundmap_unknown_classes(ctx):
    if ctx.partition_names is None:
        return
    for diagnostic in coverage_diagnostics(
        ctx.partition_names, ctx.bound_names(), ctx.location
    ):
        if diagnostic.rule == "R002":
            yield diagnostic


@rule(
    "R003",
    targets="boundmap",
    title="invalid bound interval",
    paper="Section 2.2",
)
def invalid_interval(ctx):
    """The paper requires ``0 ≤ b_l ≤ b_u``, ``b_l ≠ ∞`` and
    ``b_u ≠ 0`` of every bound."""
    for name, value in ctx.entries():
        endpoints = endpoints_of(value)
        if endpoints is None:
            yield ctx.diagnostic(
                Severity.ERROR,
                "bound for {!r} is not an interval: {!r}".format(name, value),
                hint="use Interval(lo, hi) or a (lo, hi) pair",
            )
            continue
        lo, hi = endpoints
        if not _is_number(lo) or not _is_number(hi):
            yield ctx.diagnostic(
                Severity.ERROR,
                "bound for {!r} has non-numeric endpoints ({!r}, {!r})".format(
                    name, lo, hi
                ),
                hint="endpoints must be int, Fraction or float",
            )
            continue
        if math.isinf(lo):
            yield ctx.diagnostic(
                Severity.ERROR,
                "bound for {!r} has an infinite lower endpoint".format(name),
                hint="the paper requires b_l(C) != inf",
            )
        if not math.isinf(lo) and lo < 0:
            yield ctx.diagnostic(
                Severity.ERROR,
                "bound for {!r} has a negative lower endpoint {!r}".format(name, lo),
                hint="bounds are lengths of time; use lo >= 0",
            )
        if hi == 0:
            yield ctx.diagnostic(
                Severity.ERROR,
                "bound for {!r} has a zero upper endpoint".format(name),
                hint="the paper requires b_u(C) != 0; use a positive upper bound",
            )
        if not math.isinf(lo) and hi != 0 and hi < lo:
            yield ctx.diagnostic(
                Severity.ERROR,
                "bound for {!r} is inverted: lo = {!r} > hi = {!r}".format(
                    name, lo, hi
                ),
                hint="swap the endpoints (intervals are [lo, hi] with lo <= hi)",
            )


@rule(
    "R004",
    targets="boundmap",
    title="inexact (float) bound endpoints",
    paper="Section 2.2",
)
def inexact_bounds(ctx):
    """Float endpoints make the predictive ``Ft``/``Lt`` arithmetic
    inexact; mapping inequalities that hold on paper can then fail by
    rounding."""
    for name, value in ctx.entries():
        endpoints = endpoints_of(value)
        if endpoints is None:
            continue
        inexact = [e for e in endpoints if _is_inexact(e)]
        if inexact:
            yield ctx.diagnostic(
                Severity.WARNING,
                "bound for {!r} uses inexact float endpoint(s) {!r}".format(
                    name, inexact
                ),
                hint="use fractions.Fraction for exact predictive arithmetic",
            )


# ----------------------------------------------------------------------
# Timed-automaton rules
# ----------------------------------------------------------------------


@rule(
    "R005",
    targets="timed",
    title="trivial [0, inf] class bound",
    paper="Section 2.3",
)
def trivial_class_bound(ctx):
    """A ``[0, ∞]`` bound makes ``cond(C)`` vacuous: the class is
    effectively untimed.  Legitimate for environment classes (the
    relay's ``SIGNAL_0``), so a warning, not an error."""
    for cls in ctx.timed.classes():
        if cls.name in ctx.timed.boundmap and ctx.timed.boundmap[cls.name].is_trivial:
            yield ctx.diagnostic(
                Severity.WARNING,
                "class {!r} is bounded by [0, inf]: cond({!r}) imposes no "
                "timing constraint".format(cls.name, cls.name),
                hint="tighten the bound, or keep it only for deliberately "
                "untimed environment classes",
            )


@rule(
    "R008",
    targets="timed",
    title="partition class never enabled",
    paper="Section 2.3",
)
def dead_class(ctx):
    """A class with no enabled action in any reachable state never
    fires; its bound is dead weight and its upper bound can never be
    demanded.  Skipped when exploration was truncated (a deeper state
    could still enable the class)."""
    exploration = ctx.exploration()
    if exploration.truncated:
        return
    automaton = ctx.timed.automaton
    for cls in ctx.timed.classes():
        if not any(
            automaton.class_enabled(state, cls) for state in exploration.reachable
        ):
            yield ctx.diagnostic(
                Severity.WARNING,
                "class {!r} is never enabled in any of the {} reachable "
                "states".format(cls.name, len(exploration.reachable)),
                hint="check the preconditions of {!r} or drop the class".format(
                    sorted(map(repr, cls.actions))
                ),
            )


@rule(
    "R009",
    targets="timed",
    title="dummy NULL component left untimed",
    paper="Section 5, Lemma 5.1",
)
def untimed_dummy(ctx):
    """Dummification only forces executions to be infinite when the
    ``NULL`` class has a *finite* upper bound (``n_2 < ∞``)."""
    from repro.core.dummification import NULL

    automaton = ctx.timed.automaton
    if not automaton.signature.contains(NULL):
        return
    cls = automaton.partition.class_of(NULL)
    if cls is None:
        yield ctx.diagnostic(
            Severity.ERROR,
            "dummy action NULL is in the signature but in no partition class",
            hint="give NULL its own class so the boundmap can time it",
        )
        return
    if cls.name not in ctx.timed.boundmap:
        yield ctx.diagnostic(
            Severity.ERROR,
            "dummy class {!r} has no bound interval".format(cls.name),
            hint="bound it with a finite upper end, e.g. Interval(0, 1)",
        )
        return
    if not ctx.timed.boundmap[cls.name].is_upper_bounded:
        yield ctx.diagnostic(
            Severity.ERROR,
            "dummy class {!r} has an unbounded upper end: the dummy does "
            "not force progress".format(cls.name),
            hint="Lemma 5.1 needs n_2 < inf; use e.g. Interval(0, 1)",
        )


@rule(
    "R012",
    targets="timed",
    title="input action disabled in a reachable state",
    paper="Section 2.1",
)
def input_enabledness(ctx):
    """I/O automata must be input-enabled; a disabled input breaks
    composition and the ``time(A, U)`` step semantics.  Checked over the
    (possibly truncated) explored states; one diagnostic per action."""
    automaton = ctx.timed.automaton
    inputs = sorted(automaton.signature.inputs, key=repr)
    if not inputs:
        return
    exploration = ctx.exploration()
    for action in inputs:
        for state in exploration.reachable:
            if not automaton.is_enabled(state, action):
                yield ctx.diagnostic(
                    Severity.ERROR,
                    "input {!r} is disabled in reachable state {!r}".format(
                        action, state
                    ),
                    hint="inputs must be enabled in every state "
                    "(input-enabledness)",
                )
                break


# ----------------------------------------------------------------------
# Timing-condition rules
# ----------------------------------------------------------------------


@rule(
    "R006",
    targets="conditions",
    title="condition targets no known action",
    paper="Definition 2.2",
)
def vacuous_targets(ctx):
    """A condition whose ``Π`` matches no action of the automaton can
    never be satisfied by an occurrence — usually a misspelt action."""
    actions = sorted(ctx.automaton.signature.all_actions, key=repr)
    for cond in ctx.conditions:
        if not any(cond.in_pi(action) for action in actions):
            yield ctx.diagnostic(
                Severity.ERROR,
                "condition {!r}: Pi matches none of the automaton's "
                "{} actions".format(cond.name, len(actions)),
                hint="check the target action set of {!r} for typos".format(
                    cond.name
                ),
            )


@rule(
    "R007",
    targets="conditions",
    title="trigger/disabling overlap",
    paper="Section 2.3 (technical requirements)",
)
def trigger_disabling_overlap(ctx):
    """The paper's two technical requirements, checked pre-flight
    instead of at first use: (1) no start state is both triggering and
    disabling; (2) no trigger step ends in a disabling state."""
    starts = list(ctx.automaton.start_states())
    for cond in ctx.conditions:
        for state in starts:
            if cond.starts(state) and cond.disables(state):
                yield ctx.diagnostic(
                    Severity.ERROR,
                    "condition {!r}: start state {!r} is both triggering "
                    "and disabling (T_start and S overlap)".format(cond.name, state),
                    hint="shrink T_start or S so they are disjoint",
                )
                break
        for pre, action, post in ctx.steps():
            if cond.triggers(pre, action, post) and cond.disables(post):
                yield ctx.diagnostic(
                    Severity.ERROR,
                    "condition {!r}: trigger step ({!r}, {!r}, {!r}) ends in "
                    "a disabling state".format(cond.name, pre, action, post),
                    hint="a step in T_step must not enter S; adjust the "
                    "trigger or disabling predicate",
                )
                break


@rule(
    "R013",
    targets="conditions",
    title="condition never activated",
    paper="Definition 2.2",
)
def inactive_condition(ctx):
    """A condition that no start state starts and no reachable step
    triggers imposes no constraint at all — usually a wrong trigger
    predicate.  Skipped when exploration was truncated."""
    exploration = ctx.exploration()
    if exploration.truncated:
        return
    starts = list(ctx.automaton.start_states())
    for cond in ctx.conditions:
        if any(cond.starts(state) for state in starts):
            continue
        if any(cond.triggers(pre, a, post) for pre, a, post in ctx.steps()):
            continue
        yield ctx.diagnostic(
            Severity.WARNING,
            "condition {!r} is never activated: no start state is in "
            "T_start and no reachable step is in T_step".format(cond.name),
            hint="check the start/trigger predicates of {!r}".format(cond.name),
        )


# ----------------------------------------------------------------------
# Mapping and chain rules
# ----------------------------------------------------------------------


@rule(
    "R010",
    targets="mapping",
    title="mapping endpoints disagree on the underlying A",
    paper="Definition 3.2 (condition 3)",
)
def mapping_base_mismatch(ctx):
    """Condition 3 requires ``f`` to be the identity on ``A``-state
    components, which is unsatisfiable unless source and target are
    built over the *same* underlying automaton."""
    mapping = ctx.mapping
    if mapping.bases_agree:
        return
    source_base = mapping.source.base
    target_base = mapping.target.base
    if source_base.name == target_base.name and (
        source_base.signature == target_base.signature
    ):
        yield ctx.diagnostic(
            Severity.WARNING,
            "mapping {!r}: source and target use distinct (but look-alike) "
            "base automaton instances".format(mapping.name),
            hint="build both time(A, .) automata over one shared A object",
        )
    else:
        yield ctx.diagnostic(
            Severity.ERROR,
            "mapping {!r}: source base {!r} and target base {!r} are "
            "different automata — the identity requirement on A-states "
            "cannot hold".format(mapping.name, source_base.name, target_base.name),
            hint="a strong possibilities mapping relates time(A, U) to "
            "time(A, V) over the same A (Definition 3.2)",
        )


@rule(
    "R011",
    targets="chain",
    title="mapping chain levels do not share intermediates",
    paper="Section 6.3, Corollary 6.3",
)
def chain_broken_link(ctx):
    """Adjacent levels must share the intermediate automaton *object*:
    level k's target is level k+1's source, or the composed hierarchy
    proves nothing about the end-to-end requirement."""
    mappings = list(ctx.mappings)
    for index, (first, second) in enumerate(zip(mappings, mappings[1:])):
        if first.target is not second.source:
            yield ctx.diagnostic(
                Severity.ERROR,
                "chain link {}: {!r} targets {!r} but the next level "
                "{!r} starts from {!r}".format(
                    index,
                    first.name,
                    first.target.name,
                    second.name,
                    second.source.name,
                ),
                hint="reuse one intermediate automaton instance per level "
                "(cache B_k as RelaySystem.intermediate does)",
            )


@rule(
    "R014",
    targets="system",
    title="fragile bounds: zero measured timing tolerance",
    paper="Section 4 (the mapping inequalities)",
)
def fragile_bounds(ctx):
    """Probe the system's perturbation harness at a small drift.  A
    system whose proofs already fail at ``ε = 1/32`` has (to lint
    precision) *zero* timing tolerance: its bounds sit exactly at the
    proofs' breaking point, and any implementation drift voids them.
    Systems without a harness are skipped; an exhausted probe budget
    downgrades to INFO (inconclusive, not fragile)."""
    from repro.faults import Budget, perturb_names, probe_tolerance

    name = ctx.target.name
    if name not in perturb_names():
        return
    budget = Budget(max_states=50_000, max_steps=500_000, wall_time=15)
    try:
        _target, nominal, probe = probe_tolerance(
            name, ctx.probe_epsilon, budget=budget, seeds=1, steps=40
        )
    except Exception as exc:  # pragma: no cover - defensive
        yield ctx.diagnostic(
            Severity.WARNING,
            "tolerance probe crashed: {}".format(exc),
            hint="run `python -m repro perturb {} --search` by hand".format(name),
        )
        return
    if not nominal.ok:
        yield ctx.diagnostic(
            Severity.WARNING,
            "system fails its own checks at eps=0: {}".format(nominal.detail),
            hint="the nominal bounds do not satisfy the requirements; "
            "see `python -m repro perturb {}`".format(name),
        )
        return
    if not probe.ok:
        yield ctx.diagnostic(
            Severity.WARNING,
            "fragile bounds: drift eps={} already breaks the checks "
            "({})".format(ctx.probe_epsilon, probe.detail),
            hint="measured tolerance is zero to lint precision; widen the "
            "slack between algorithm and requirement bounds",
        )
        return
    if nominal.exhausted_budget or probe.exhausted_budget:
        yield ctx.diagnostic(
            Severity.INFO,
            "tolerance probe inconclusive: the lint budget ran out before "
            "the checks finished",
            hint="run `python -m repro perturb {} --search` with a larger "
            "budget".format(name),
        )
