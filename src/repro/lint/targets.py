"""Lintable bundles for every shipped system.

A :class:`SystemTarget` collects the artifacts a system exposes — timed
automata, requirement condition sets, mappings and hierarchies — under
stable location labels, so ``python -m repro lint <name>`` and the
self-check test can lint each system the same way.

Builders use the same default parameters as the CLI commands, chosen
small enough that bounded exploration finishes instantly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Dict, Sequence, Tuple

from repro.errors import LintError
from repro.timed.interval import Interval

__all__ = ["SystemTarget", "system_names", "build_target", "build_all_targets"]


@dataclass
class SystemTarget:
    """Everything the linter inspects for one shipped system."""

    name: str
    #: ``(location, TimedAutomaton)`` pairs.
    timed_automata: Tuple = ()
    #: ``(location, IOAutomaton, conditions)`` triples.
    condition_sets: Tuple = ()
    #: Standalone strong possibilities mappings.
    mappings: Tuple = ()
    #: ``(location, sequence-of-mappings)`` pairs.
    chains: Tuple = ()
    #: ``(rule_id, substring)`` pairs: warnings of that rule whose
    #: location or message contains the substring are deliberate
    #: modelling choices — the driver downgrades them to INFO so a
    #: strict gate stays meaningful (errors are never waived).
    waivers: Tuple[Tuple[str, str], ...] = ()


def _rm_target() -> SystemTarget:
    from repro.systems import (
        ResourceManagerParams,
        ResourceManagerSystem,
        resource_manager_mapping,
    )

    system = ResourceManagerSystem(
        ResourceManagerParams(k=3, c1=Fraction(2), c2=Fraction(3), l=Fraction(1))
    )
    return SystemTarget(
        name="rm",
        timed_automata=(("rm/(A,b)", system.timed),),
        condition_sets=(
            ("rm/requirements", system.timed.automaton, (system.g1, system.g2)),
        ),
        mappings=(resource_manager_mapping(system),),
    )


def _relay_target() -> SystemTarget:
    from repro.systems import RelayParams, RelaySystem, relay_hierarchy

    system = RelaySystem(RelayParams(n=3, d1=Fraction(1), d2=Fraction(2)))
    return SystemTarget(
        name="relay",
        timed_automata=(
            ("relay/(A,b)", system.timed),
            ("relay/(A~,b~)", system.dummified),
        ),
        condition_sets=(
            ("relay/requirements", system.dummified.automaton, (system.requirement,)),
        ),
        chains=(("relay/hierarchy", relay_hierarchy(system)),),
        waivers=(("R005", "'SIGNAL_0'"),),
    )


def _fischer_target() -> SystemTarget:
    from repro.systems.extensions.fischer import FischerParams, fischer_system

    timed = fischer_system(FischerParams(n=2, a=Fraction(1), b=Fraction(2)))
    return SystemTarget(
        name="fischer",
        timed_automata=(("fischer/(A,b)", timed),),
        waivers=(("R005", "'TRY_"), ("R005", "'EXIT_")),
    )


def _peterson_target() -> SystemTarget:
    from repro.systems.extensions.peterson import PetersonParams, peterson_system

    timed = peterson_system(PetersonParams(s1=Fraction(1), s2=Fraction(2)))
    return SystemTarget(
        name="peterson",
        timed_automata=(("peterson/(A,b)", timed),),
        waivers=(("R005", "'CS_"),),
    )


def _tournament_target() -> SystemTarget:
    from repro.systems.extensions.tournament import TournamentParams, tournament_system

    timed = tournament_system(TournamentParams(n=2, s1=Fraction(1), s2=Fraction(2)))
    return SystemTarget(
        name="tournament",
        timed_automata=(("tournament/(A,b)", timed),),
        waivers=(("R005", "'CS_"),),
    )


def _chain_target() -> SystemTarget:
    from repro.systems.extensions.chain import ChainSystem

    system = ChainSystem([Interval(1, 2), Interval(2, 3)])
    return SystemTarget(
        name="chain",
        timed_automata=(
            ("chain/(A,b)", system.timed),
            ("chain/(A~,b~)", system.dummified),
        ),
        condition_sets=(
            ("chain/requirements", system.dummified.automaton, (system.requirement,)),
        ),
        chains=(("chain/hierarchy", system.hierarchy()),),
        waivers=(("R005", "'EVENT_0'"),),
    )


def _request_grant_target() -> SystemTarget:
    from repro.systems.extensions.request_grant import (
        RequestGrantParams,
        request_grant_system,
        response_condition,
    )

    params = RequestGrantParams(r1=Fraction(3), r2=Fraction(4), l=Fraction(1))
    timed = request_grant_system(params)
    return SystemTarget(
        name="request-grant",
        timed_automata=(("request-grant/(A,b)", timed),),
        condition_sets=(
            (
                "request-grant/requirements",
                timed.automaton,
                (response_condition(params),),
            ),
        ),
    )


def _interrupt_target() -> SystemTarget:
    from repro.systems import ResourceManagerParams
    from repro.systems.extensions.interrupt_manager import interrupt_resource_manager

    timed = interrupt_resource_manager(
        ResourceManagerParams(k=3, c1=Fraction(2), c2=Fraction(3), l=Fraction(1))
    )
    return SystemTarget(name="interrupt", timed_automata=(("interrupt/(A,b)", timed),))


_BUILDERS: Dict[str, Callable[[], SystemTarget]] = {
    "rm": _rm_target,
    "relay": _relay_target,
    "fischer": _fischer_target,
    "peterson": _peterson_target,
    "tournament": _tournament_target,
    "chain": _chain_target,
    "request-grant": _request_grant_target,
    "interrupt": _interrupt_target,
}


def system_names() -> Tuple[str, ...]:
    """The lintable shipped-system names, in CLI order."""
    return tuple(_BUILDERS)


def build_target(name: str) -> SystemTarget:
    """Build the lint target for one shipped or generated system."""
    from repro.gen.names import is_gen_name

    if is_gen_name(name):
        from repro.gen.families import build_bundle

        return build_bundle(name).lint_target()
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise LintError(
            "unknown system {!r}; choose from {}".format(
                name, ", ".join(system_names())
            )
        ) from None
    return builder()


def build_all_targets() -> Tuple[SystemTarget, ...]:
    return tuple(builder() for builder in _BUILDERS.values())
