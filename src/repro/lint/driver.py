"""Lint drivers: build a context, run every registered rule for its
target kind, collect a :class:`~repro.lint.diagnostics.LintReport`.

The drivers are layered the way the paper's artifacts are:

- :func:`lint_boundmap` — a raw bound spec (possibly not even
  constructible as :class:`~repro.timed.interval.Interval` objects);
- :func:`lint_timed_automaton` — a ``(A, b)`` pair, including its
  boundmap and the derived ``cond(C)`` conditions;
- :func:`lint_conditions` — a requirement condition set against its
  automaton;
- :func:`lint_mapping` / :func:`lint_chain` — strong possibilities
  mappings and hierarchies;
- :func:`lint_system` — a whole shipped system bundle
  (:class:`~repro.lint.targets.SystemTarget`).

Exploration-backed rules share one bounded breadth-first exploration
per automaton (``max_states`` caps the work, so linting stays
pre-flight fast even for systems with unbounded state spaces).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from fractions import Fraction
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.ioa.automaton import IOAutomaton
from repro.ioa.explorer import ExplorationResult, explore, iter_steps
from repro.lint.diagnostics import Diagnostic, LintReport, Severity
from repro.lint.registry import rules_for
from repro.timed.boundmap import Boundmap, TimedAutomaton
from repro.timed.conditions import TimingCondition, boundmap_conditions

# Importing the rules module registers every rule.
from repro.lint import rules as _rules  # noqa: F401

__all__ = [
    "DEFAULT_MAX_STATES",
    "BoundmapContext",
    "TimedContext",
    "ConditionsContext",
    "MappingContext",
    "ChainContext",
    "SystemContext",
    "lint_boundmap",
    "lint_timed_automaton",
    "lint_conditions",
    "lint_mapping",
    "lint_chain",
    "lint_system",
]

#: Default cap on bounded exploration during linting.
DEFAULT_MAX_STATES = 2000


class _Context:
    """Shared context machinery: the driver stamps the active rule id so
    ``ctx.diagnostic(...)`` needs no boilerplate inside rules."""

    location: str = "?"
    _active_rule: str = "R000"

    def diagnostic(
        self,
        severity: Severity,
        message: str,
        hint: str = "",
        location: Optional[str] = None,
    ) -> Diagnostic:
        return Diagnostic(
            rule=self._active_rule,
            severity=severity,
            location=location or self.location,
            message=message,
            hint=hint,
        )


class _ExploringContext(_Context):
    """Context with a lazily computed, cached bounded exploration."""

    automaton: IOAutomaton
    max_states: int = DEFAULT_MAX_STATES
    _exploration: Optional[ExplorationResult] = None
    _steps: Optional[Tuple[Tuple, ...]] = None

    def exploration(self) -> ExplorationResult:
        if self._exploration is None:
            self._exploration = explore(self.automaton, max_states=self.max_states)
        return self._exploration

    def steps(self) -> Tuple[Tuple, ...]:
        if self._steps is None:
            self._steps = tuple(iter_steps(self.automaton, self.exploration().reachable))
        return self._steps


@dataclass
class BoundmapContext(_Context):
    """A bound spec: class name → :class:`Interval` or raw ``(lo, hi)``
    pair; optionally the partition class names to check coverage
    against."""

    bounds: Mapping[str, object]
    partition_names: Optional[Tuple[str, ...]] = None
    location: str = "boundmap"

    def entries(self) -> Iterable[Tuple[str, object]]:
        return sorted(self.bounds.items(), key=lambda item: item[0])

    def bound_names(self) -> Tuple[str, ...]:
        return tuple(self.bounds)


@dataclass
class TimedContext(_ExploringContext):
    """A timed automaton ``(A, b)``."""

    timed: TimedAutomaton
    location: str = "timed"
    max_states: int = DEFAULT_MAX_STATES

    def __post_init__(self) -> None:
        self.automaton = self.timed.automaton


@dataclass
class ConditionsContext(_ExploringContext):
    """A set of timing conditions against their automaton ``A``."""

    automaton: IOAutomaton
    conditions: Tuple[TimingCondition, ...]
    location: str = "conditions"
    max_states: int = DEFAULT_MAX_STATES

    def __post_init__(self) -> None:
        self.conditions = tuple(self.conditions)


@dataclass
class MappingContext(_Context):
    """A single strong possibilities mapping."""

    mapping: object
    location: str = "mapping"


@dataclass
class ChainContext(_Context):
    """An ordered sequence of mappings forming a hierarchy."""

    mappings: Tuple[object, ...]
    location: str = "chain"

    def __post_init__(self) -> None:
        self.mappings = tuple(self.mappings)


@dataclass
class SystemContext(_Context):
    """A whole shipped-system bundle, for rules that need more than one
    artifact at a time (e.g. R014's tolerance probe)."""

    target: object
    location: str = "system"
    #: Drift probed by R014: failing here means ~zero measured tolerance.
    probe_epsilon: Fraction = Fraction(1, 32)


def _run(target: str, ctx: _Context) -> LintReport:
    report = LintReport()
    for lint_rule in rules_for(target):
        ctx._active_rule = lint_rule.id
        report.extend(lint_rule.run(ctx))
    return report


# ----------------------------------------------------------------------
# Public drivers
# ----------------------------------------------------------------------


def lint_boundmap(
    bounds: Mapping[str, object],
    partition_names: Optional[Iterable[str]] = None,
    location: str = "boundmap",
) -> LintReport:
    """Lint a raw bound spec (it need not be constructible as a
    :class:`Boundmap`: inverted or negative intervals are precisely what
    R003 reports instead of raising)."""
    if isinstance(bounds, Boundmap):
        bounds = dict(bounds.items())
    names = tuple(partition_names) if partition_names is not None else None
    return _run("boundmap", BoundmapContext(bounds, names, location))


def lint_timed_automaton(
    timed: TimedAutomaton,
    max_states: int = DEFAULT_MAX_STATES,
    location: Optional[str] = None,
) -> LintReport:
    """Lint a timed automaton ``(A, b)``: its boundmap (coverage,
    interval hygiene), the automaton-level rules (dead classes, input
    enabledness, dummy timing) and the derived ``cond(C)`` conditions
    (the paper's two technical requirements, pre-flight)."""
    where = location or timed.automaton.name
    report = lint_boundmap(
        timed.boundmap,
        timed.automaton.partition.names,
        location="{}/boundmap".format(where),
    )
    ctx = TimedContext(timed, location=where, max_states=max_states)
    report.extend(_run("timed", ctx))
    conditions_ctx = ConditionsContext(
        timed.automaton,
        boundmap_conditions(timed),
        location="{}/cond(C)".format(where),
        max_states=max_states,
    )
    # Reuse the exploration already done for the timed rules.
    conditions_ctx._exploration = ctx._exploration
    report.extend(_run("conditions", conditions_ctx))
    return report


def lint_conditions(
    automaton: IOAutomaton,
    conditions: Sequence[TimingCondition],
    max_states: int = DEFAULT_MAX_STATES,
    location: Optional[str] = None,
) -> LintReport:
    """Lint requirement conditions against the automaton they time."""
    where = location or "{}/conditions".format(automaton.name)
    ctx = ConditionsContext(
        automaton, tuple(conditions), location=where, max_states=max_states
    )
    return _run("conditions", ctx)


def lint_mapping(mapping, location: Optional[str] = None) -> LintReport:
    """Lint one strong possibilities mapping."""
    where = location or "mapping:{}".format(getattr(mapping, "name", "?"))
    return _run("mapping", MappingContext(mapping, location=where))


def lint_chain(mappings: Sequence, location: str = "chain") -> LintReport:
    """Lint a mapping hierarchy: per-level mapping rules plus the
    cross-level link rule.  Accepts a
    :class:`~repro.core.mappings.MappingChain` or any sequence."""
    levels = tuple(mappings)
    report = _run("chain", ChainContext(levels, location=location))
    for index, mapping in enumerate(levels):
        report.extend(
            lint_mapping(
                mapping,
                location="{}[{}]:{}".format(
                    location, index, getattr(mapping, "name", "?")
                ),
            )
        )
    return report


def _apply_waivers(report: LintReport, waivers) -> LintReport:
    """Downgrade waived warnings to INFO.

    A waiver is a ``(rule_id, substring)`` pair: diagnostics of that
    rule whose location or message contains the substring are known,
    deliberate modelling choices (e.g. the relay's untimed ``SIGNAL_0``
    environment class) and must not fail a strict gate.  Errors are
    never waived."""
    if not waivers:
        return report
    adjusted = LintReport()
    for diagnostic in report:
        waived = diagnostic.severity is Severity.WARNING and any(
            diagnostic.rule == rule_id
            and (needle in diagnostic.location or needle in diagnostic.message)
            for rule_id, needle in waivers
        )
        if waived:
            diagnostic = replace(
                diagnostic,
                severity=Severity.INFO,
                hint=(diagnostic.hint + " " if diagnostic.hint else "")
                + "[waived: deliberate modelling choice]",
            )
        adjusted.add(diagnostic)
    return adjusted


def lint_system(target, max_states: int = DEFAULT_MAX_STATES) -> LintReport:
    """Lint a whole shipped-system bundle
    (:class:`~repro.lint.targets.SystemTarget`), apply its waivers, and
    finish with the system-level rules (R014's tolerance probe)."""
    report = LintReport()
    for location, timed in target.timed_automata:
        report.extend(lint_timed_automaton(timed, max_states=max_states, location=location))
    for location, automaton, conditions in target.condition_sets:
        report.extend(
            lint_conditions(automaton, conditions, max_states=max_states, location=location)
        )
    for mapping in target.mappings:
        report.extend(lint_mapping(mapping, location="{}/mapping:{}".format(
            target.name, getattr(mapping, "name", "?"))))
    for location, chain in target.chains:
        report.extend(lint_chain(chain, location=location))
    report = _apply_waivers(report, getattr(target, "waivers", ()))
    ctx = SystemContext(target, location="{}/system".format(target.name))
    report.extend(_run("system", ctx))
    return report
