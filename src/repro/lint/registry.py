"""The lint rule registry.

Rules are plain generator functions registered with the
:func:`rule` decorator::

    @rule("R001", targets=("timed", "boundmap"),
          title="boundmap misses partition classes",
          paper="Definition 2.1")
    def missing_classes(ctx):
        ...
        yield ctx.diagnostic(Severity.ERROR, "…", hint="…")

Each rule declares which lint *targets* it applies to; the drivers in
:mod:`repro.lint.driver` run every registered rule for their target
kind.  Rule ids are unique and stable — they key the documentation in
``docs/linting.md`` and the ``--json`` output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, Tuple

from repro.errors import LintError

__all__ = [
    "LINT_TARGETS",
    "Rule",
    "rule",
    "all_rules",
    "rules_for",
    "get_rule",
    "ruleset_version",
]

#: The kinds of object a rule can lint.  ``interference`` rules are run
#: by the static analyzer (:mod:`repro.analyze`), not the lint driver.
LINT_TARGETS = (
    "boundmap",
    "timed",
    "conditions",
    "mapping",
    "chain",
    "system",
    "interference",
)


@dataclass(frozen=True)
class Rule:
    """A registered lint rule."""

    id: str
    targets: FrozenSet[str]
    title: str
    paper: str
    func: Callable

    def run(self, ctx) -> Iterable:
        return self.func(ctx)


_REGISTRY: Dict[str, Rule] = {}


def rule(rule_id: str, *, targets, title: str, paper: str = ""):
    """Register a rule function under ``rule_id`` for the given targets."""
    target_set = frozenset([targets] if isinstance(targets, str) else targets)
    unknown = target_set - set(LINT_TARGETS)
    if unknown:
        raise LintError(
            "rule {!r} names unknown lint targets {!r}".format(rule_id, sorted(unknown))
        )

    def decorate(func: Callable) -> Callable:
        if rule_id in _REGISTRY:
            raise LintError("duplicate lint rule id {!r}".format(rule_id))
        _REGISTRY[rule_id] = Rule(
            id=rule_id,
            targets=target_set,
            title=title,
            paper=paper,
            func=func,
        )
        return func

    return decorate


def all_rules() -> Tuple[Rule, ...]:
    """All registered rules, sorted by id."""
    return tuple(_REGISTRY[key] for key in sorted(_REGISTRY))


def rules_for(target: str) -> Tuple[Rule, ...]:
    """The rules applying to one lint target kind, sorted by id."""
    if target not in LINT_TARGETS:
        raise LintError("unknown lint target {!r}".format(target))
    return tuple(r for r in all_rules() if target in r.targets)


def get_rule(rule_id: str) -> Rule:
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise LintError("no lint rule with id {!r}".format(rule_id)) from None


def ruleset_version() -> str:
    """A fingerprint of the *rule set* itself: highest rule id, rule
    count and engine version.

    Folded into verdict-cache keys for lint/analyze entries so that
    adding a rule (R015+) invalidates previously-clean cached verdicts
    instead of serving them stale.  Imports the rule modules lazily so
    every registered rule is counted regardless of call order."""
    from repro.cache.fingerprint import ENGINE_VERSION
    from repro.lint import rules as _rules  # noqa: F401 — registers R001+

    try:  # registers R015+ (absent only in stripped-down builds)
        from repro.analyze import interference as _interference  # noqa: F401
    except ImportError:  # pragma: no cover
        pass
    ids = sorted(_REGISTRY)
    newest = ids[-1] if ids else "R000"
    return "{}:{}:e{}".format(newest, len(ids), ENGINE_VERSION)
