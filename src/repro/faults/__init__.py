"""Fault injection, perturbation, and timing-tolerance analysis.

The paper's strong possibilities mappings are *inequalities* between
predicted times (Section 4), so every proof implicitly tolerates some
slack in the boundmap.  This package measures that slack:

- :mod:`repro.faults.budget` — a cross-cutting resource guard so every
  checker degrades gracefully instead of hanging on state blow-up;
- :mod:`repro.faults.perturb` — clock-drift/jitter operators on
  boundmaps and condition sets, plus action delay/drop injection;
- :mod:`repro.faults.strategies` — adversarial schedulers that steer
  runs to the edges of every ``Ft``/``Lt`` window;
- :mod:`repro.faults.tolerance` — binary search for the largest ε a
  system's proofs survive;
- :mod:`repro.faults.targets` — per-system perturbation harnesses for
  every shipped system.
"""

from repro.faults.budget import Budget
from repro.faults.checks import (
    absolute_bounds_check,
    lemma_2_1_check,
    mapping_run_check,
    safety_check,
    slack_refinement_mapping,
    zone_condition_check,
)
from repro.faults.perturb import (
    ActionDropAutomaton,
    Drift,
    delay_class,
    drop_actions,
    perturb_boundmap,
    perturb_conditions,
    perturb_interval,
)
from repro.faults.strategies import (
    AdversarialStrategy,
    DeadlinePushStrategy,
    JitterStrategy,
)
from repro.faults.targets import (
    PerturbTarget,
    build_perturb_target,
    perturb_names,
    probe_tolerance,
)
from repro.faults.tolerance import ToleranceReport, search_tolerance

__all__ = [
    "Budget",
    "Drift",
    "perturb_interval",
    "perturb_boundmap",
    "perturb_conditions",
    "delay_class",
    "drop_actions",
    "ActionDropAutomaton",
    "AdversarialStrategy",
    "DeadlinePushStrategy",
    "JitterStrategy",
    "ToleranceReport",
    "search_tolerance",
    "PerturbTarget",
    "perturb_names",
    "build_perturb_target",
    "probe_tolerance",
    "mapping_run_check",
    "lemma_2_1_check",
    "absolute_bounds_check",
    "zone_condition_check",
    "safety_check",
    "slack_refinement_mapping",
]
