"""Per-system perturbation harnesses.

Each shipped system gets a :class:`PerturbTarget`: a canonical stress
direction, a ceiling for the tolerance search, and an ``evaluate(ε,
budget)`` that rebuilds the system under that much drift and folds all
of its evidence — adversarially-scheduled simulation runs through the
paper's mappings, Lemma 2.1 acceptance of the perturbed behaviors
against the *nominal* ``(A, b)``, and exact zone verification of the
nominal claims — into one :class:`~repro.core.checker.CheckOutcome`.

Stress directions are not arbitrary.  Mapping systems (resource
manager, relay, chain) are stressed by *tightening*: a sound mapping
must keep holding as the implementation gets more precise, until
tightening inverts a bound interval — so their tolerance is the slack
the paper's inequalities leave, e.g. ``(c2 − c1)/(c2 + c1)`` for the
resource manager.  Safety systems (Fischer, Peterson, tournament) are
stressed by *widening*: sloppier clocks break Fischer's mutual
exclusion at ``ε = (b − a)/(a + b)``, while the untimed mutex
arguments of Peterson and the tournament survive any drift (the search
reports a ceiling hit).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.checker import CheckOutcome
from repro.core.dummification import undum
from repro.core.mappings import MappingChain
from repro.core.projection import project
from repro.core.time_automaton import time_of_boundmap
from repro.errors import ReproError
from repro.faults.budget import Budget
from repro.faults.checks import (
    absolute_bounds_check,
    lemma_2_1_check,
    mapping_run_check,
    safety_check,
    slack_refinement_mapping,
    zone_condition_check,
)
from repro.faults.perturb import Drift, perturb_boundmap, perturb_interval
from repro.faults.strategies import (
    AdversarialStrategy,
    DeadlinePushStrategy,
    JitterStrategy,
)
from repro.faults.tolerance import ToleranceReport, search_tolerance
from repro.sim.scheduler import Simulator
from repro.sim.strategies import UniformStrategy
from repro.systems import (
    GRANT,
    SIGNAL,
    RelayParams,
    RelaySystem,
    ResourceManagerParams,
    ResourceManagerSystem,
    relay_hierarchy,
)
from repro.systems.extensions import (
    EVENT,
    ChainSystem,
    FischerParams,
    PetersonParams,
    TournamentParams,
    both_critical,
    fischer_system,
    mutual_exclusion_violated,
    peterson_system,
    tournament_mutex_violated,
    tournament_system,
)
from repro.systems.mappings_rm import resource_manager_mapping_over
from repro.timed.boundmap import TimedAutomaton
from repro.timed.interval import Interval

__all__ = [
    "PerturbTarget",
    "perturb_names",
    "build_perturb_target",
    "probe_tolerance",
]

#: evaluate(epsilon, budget) -> folded outcome of every check at that ε.
Evaluation = Callable[[Fraction, Optional[Budget]], CheckOutcome]


@dataclass(frozen=True)
class PerturbTarget:
    """One system's perturbation harness.

    ``expected_broken`` marks systems shipped *deliberately* failing
    their nominal checks (fischer-tight): a BROKEN search verdict on
    one of these is the expected finding, so CLI exit codes and the
    runner's campaign verdict do not count it as a failure.
    """

    name: str
    description: str
    direction: str
    mode: str
    ceiling: Fraction
    evaluate: Evaluation
    expected_broken: bool = False
    #: The adversarial-battery parameters the harness was built with —
    #: part of the verdict-cache identity (see :meth:`cache_parts`).
    seeds: int = 3
    steps: int = 80
    seed: int = 0

    def cache_parts(self) -> Dict[str, object]:
        """The canonical verdict-cache key parts of this harness.

        Everything that changes what :attr:`evaluate` computes — stress
        direction, drift mode, battery size, RNG seed — goes in; callers
        merge in their own per-call parameters (ε, budget caps,
        resolution) before handing the dict to the cache.
        """
        return {
            "direction": self.direction,
            "mode": self.mode,
            "seeds": self.seeds,
            "steps": self.steps,
            "seed": self.seed,
        }

    def search(
        self,
        resolution: Fraction = Fraction(1, 64),
        ceiling: Optional[Fraction] = None,
        budget_factory: Optional[Callable[[], Budget]] = None,
    ) -> ToleranceReport:
        """Binary-search this target's timing tolerance."""
        return search_tolerance(
            self.evaluate,
            system=self.name,
            direction=self.direction,
            mode=self.mode,
            ceiling=self.ceiling if ceiling is None else ceiling,
            resolution=resolution,
            budget_factory=budget_factory,
        )


# ----------------------------------------------------------------------
# Shared plumbing
# ----------------------------------------------------------------------


def _guarded(evaluate: Evaluation) -> Evaluation:
    """Make an evaluation total: any engine error at this ε (a collapsed
    interval, invalid parameters, a scheduling deadlock injected by the
    fault) is a *failing outcome*, not an exception."""

    def wrapped(eps, budget: Optional[Budget] = None) -> CheckOutcome:
        try:
            return evaluate(Fraction(eps), budget)
        except ReproError as exc:
            return CheckOutcome(
                False, 0, "{}: {}".format(type(exc).__name__, exc)
            )

    return wrapped


def _run_checks(
    checks: List[Tuple[str, Callable[[], CheckOutcome]]],
    budget: Optional[Budget],
) -> CheckOutcome:
    """Fold labelled check thunks: first failure wins (labelled), steps
    accumulate, and an exhausted budget stops the fold early with the
    partial result marked."""
    total = 0
    exhausted = False
    for label, thunk in checks:
        if budget is not None and budget.exhausted:
            exhausted = True
            break
        outcome = thunk()
        total += outcome.steps_checked
        exhausted = exhausted or outcome.exhausted_budget
        if not outcome.ok:
            return CheckOutcome(
                False,
                total,
                "{}: {}".format(label, outcome.detail),
                failing_source_state=outcome.failing_source_state,
                failing_target_state=outcome.failing_target_state,
                exhausted_budget=exhausted,
            )
    detail = "budget exhausted after {} steps".format(total) if exhausted else ""
    return CheckOutcome(True, total, detail, exhausted_budget=exhausted)


def _adversarial_runs(
    algorithm, budget: Optional[Budget], seeds: int, steps: int, base: int = 0
):
    """Seeded runs under the full strategy battery: uniform sampling,
    both edge-of-window adversaries, and a jittered deadline-pusher.
    ``base`` offsets every RNG seed, so distinct bases give independent
    but reproducible batteries."""
    strategies = [
        UniformStrategy(random.Random(seed)) for seed in range(base, base + seeds)
    ]
    strategies.append(AdversarialStrategy(random.Random(base)))
    strategies.append(DeadlinePushStrategy(random.Random(base)))
    strategies.append(
        JitterStrategy(
            DeadlinePushStrategy(random.Random(base + 1)), rng=random.Random(base + 2)
        )
    )
    runs = []
    for strategy in strategies:
        if budget is not None and budget.exhausted:
            break
        runs.append(
            Simulator(algorithm, strategy).run(max_steps=steps, budget=budget)
        )
    return runs


# ----------------------------------------------------------------------
# Mapping systems: stressed by tightening
# ----------------------------------------------------------------------


def _rm_builder(direction: str, mode: str, seeds: int, steps: int, seed: int):
    nominal = ResourceManagerSystem(
        ResourceManagerParams(k=3, c1=Fraction(2), c2=Fraction(3), l=Fraction(1))
    )
    params = nominal.params

    def evaluate(eps: Fraction, budget: Optional[Budget]) -> CheckOutcome:
        if eps == 0:
            timed, algorithm = nominal.timed, nominal.algorithm
        else:
            timed = perturb_boundmap(
                nominal.timed, Drift(eps, mode=mode, direction=direction)
            )
            algorithm = time_of_boundmap(timed)
        mapping = resource_manager_mapping_over(
            algorithm, nominal.requirements, params
        )
        runs = _adversarial_runs(algorithm, budget, seeds, steps, base=seed)
        checks = [
            ("Section 4.3 mapping", lambda: mapping_run_check(mapping, runs, budget)),
            (
                "Lemma 2.1 vs nominal (A, b)",
                lambda: lemma_2_1_check(
                    nominal.timed, [project(run) for run in runs], budget
                ),
            ),
            (
                "zone first-GRANT bound",
                lambda: absolute_bounds_check(
                    timed, GRANT, params.first_grant_interval, budget=budget
                ),
            ),
            (
                "zone GRANT-gap bound",
                lambda: zone_condition_check(
                    timed,
                    GRANT,
                    GRANT,
                    params.grant_gap_interval,
                    occurrences=2,
                    budget=budget,
                ),
            ),
        ]
        return _run_checks(checks, budget)

    description = (
        "resource manager (k=3, c1=2, c2=3, l=1): Section 4.3 mapping, "
        "Lemma 2.1, and zone bounds vs the nominal claims"
    )
    return description, Fraction(1), evaluate


def _relay_builder(direction: str, mode: str, seeds: int, steps: int, seed: int):
    nominal = RelaySystem(RelayParams(n=3, d1=Fraction(1), d2=Fraction(2)))
    params = nominal.params
    claimed = params.end_to_end_interval

    def evaluate(eps: Fraction, budget: Optional[Budget]) -> CheckOutcome:
        if eps == 0:
            perturbed = nominal
        else:
            stage = perturb_interval(
                Interval(params.d1, params.d2),
                Drift(eps, mode=mode, direction=direction),
            )
            perturbed = RelaySystem(
                RelayParams(n=params.n, d1=stage.lo, d2=stage.hi)
            )
        chain = MappingChain(
            list(relay_hierarchy(perturbed).mappings)
            + [
                slack_refinement_mapping(
                    perturbed.requirements,
                    nominal.requirements,
                    name="relay slack refinement",
                )
            ]
        )
        runs = _adversarial_runs(perturbed.algorithm, budget, seeds, steps, base=seed)
        checks = [
            (
                "Section 6 hierarchy + slack refinement",
                lambda: mapping_run_check(chain, runs, budget),
            ),
            (
                "Lemma 2.1 vs nominal (A, b)",
                lambda: lemma_2_1_check(
                    nominal.timed, [undum(project(run)) for run in runs], budget
                ),
            ),
            (
                "zone end-to-end bound",
                lambda: zone_condition_check(
                    perturbed.timed, SIGNAL(0), SIGNAL(params.n), claimed, budget=budget
                ),
            ),
        ]
        return _run_checks(checks, budget)

    description = (
        "signal relay (n=3, d1=1, d2=2): Section 6 hierarchy chained "
        "into the nominal requirements via a slack-refinement mapping"
    )
    return description, Fraction(1), evaluate


def _chain_builder(direction: str, mode: str, seeds: int, steps: int, seed: int):
    stages = (Interval(1, 2), Interval(2, 3))
    nominal = ChainSystem(list(stages))
    claimed = nominal.requirement.interval

    def evaluate(eps: Fraction, budget: Optional[Budget]) -> CheckOutcome:
        if eps == 0:
            perturbed = nominal
        else:
            drift = Drift(eps, mode=mode, direction=direction)
            perturbed = ChainSystem(
                [perturb_interval(stage, drift) for stage in stages]
            )
        chain = MappingChain(
            list(perturbed.hierarchy().mappings)
            + [
                slack_refinement_mapping(
                    perturbed.requirements,
                    nominal.requirements,
                    name="chain slack refinement",
                )
            ]
        )
        runs = _adversarial_runs(perturbed.algorithm, budget, seeds, steps, base=seed)
        checks = [
            (
                "Section 8 hierarchy + slack refinement",
                lambda: mapping_run_check(chain, runs, budget),
            ),
            (
                "Lemma 2.1 vs nominal (A, b)",
                lambda: lemma_2_1_check(
                    nominal.timed, [undum(project(run)) for run in runs], budget
                ),
            ),
            (
                "zone end-to-end bound",
                lambda: zone_condition_check(
                    perturbed.timed, EVENT(0), EVENT(nominal.m), claimed, budget=budget
                ),
            ),
        ]
        return _run_checks(checks, budget)

    description = (
        "heterogeneous chain (stages [1,2], [2,3]): Minkowski-sum "
        "hierarchy chained into the nominal requirements"
    )
    return description, Fraction(1), evaluate


# ----------------------------------------------------------------------
# Safety systems: stressed by widening
# ----------------------------------------------------------------------


def _safety_builder(
    timed: TimedAutomaton,
    predicate,
    describe: str,
    description: str,
    max_nodes: int = 200_000,
):
    def builder(direction: str, mode: str, seeds: int, steps: int, seed: int):
        def evaluate(eps: Fraction, budget: Optional[Budget]) -> CheckOutcome:
            perturbed = (
                timed
                if eps == 0
                else perturb_boundmap(
                    timed, Drift(eps, mode=mode, direction=direction)
                )
            )
            checks = [
                (
                    "zone safety sweep",
                    lambda: safety_check(
                        perturbed,
                        predicate,
                        describe=describe,
                        budget=budget,
                        max_nodes=max_nodes,
                    ),
                )
            ]
            return _run_checks(checks, budget)

        return description, Fraction(1), evaluate

    return builder


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

#: name -> (builder, canonical direction). Builders take
#: (direction, mode, seeds, steps, seed) and return (description,
#: ceiling, evaluate).
_BUILDERS: Dict[str, Tuple[Callable, str]] = {
    "rm": (_rm_builder, "tighten"),
    "relay": (_relay_builder, "tighten"),
    "chain": (_chain_builder, "tighten"),
    "fischer": (
        _safety_builder(
            fischer_system(FischerParams(n=2, a=Fraction(1), b=Fraction(2))),
            mutual_exclusion_violated,
            "mutual exclusion violated",
            "Fischer mutex (n=2, a=1, b=2): timed safety, breaks at "
            "eps = (b-a)/(a+b)",
        ),
        "widen",
    ),
    "fischer-tight": (
        _safety_builder(
            fischer_system(FischerParams(n=2, a=Fraction(1), b=Fraction(1))),
            mutual_exclusion_violated,
            "mutual exclusion violated",
            "Fischer mutex with a = b (deliberately broken: safety "
            "needs b > a, so the nominal checks already fail)",
        ),
        "widen",
    ),
    "peterson": (
        _safety_builder(
            peterson_system(PetersonParams(s1=Fraction(1), s2=Fraction(2))),
            both_critical,
            "both processes critical",
            "Peterson mutex (s1=1, s2=2): untimed argument, tolerates "
            "any drift (ceiling hit)",
        ),
        "widen",
    ),
    "tournament": (
        _safety_builder(
            tournament_system(TournamentParams(n=2, s1=Fraction(1), s2=Fraction(2))),
            tournament_mutex_violated,
            "two processes critical",
            "tournament mutex (n=2, s1=1, s2=2): untimed argument, "
            "tolerates any drift (ceiling hit)",
        ),
        "widen",
    ),
}


#: Systems whose nominal (ε = 0) checks are *supposed* to fail.
_EXPECTED_BROKEN = frozenset({"fischer-tight"})


def perturb_names() -> Tuple[str, ...]:
    """Names accepted by :func:`build_perturb_target` (and the CLI)."""
    return tuple(_BUILDERS)


def build_perturb_target(
    name: str,
    direction: Optional[str] = None,
    mode: Optional[str] = None,
    seeds: int = 3,
    steps: int = 80,
    seed: int = 0,
) -> PerturbTarget:
    """Build one system's harness, optionally overriding the canonical
    stress direction or drift mode.  ``seed`` offsets every RNG in the
    adversarial battery for reproducible-but-independent reruns."""
    from repro.gen.names import is_gen_name

    if is_gen_name(name):
        from repro.gen.families import build_bundle

        bundle = build_bundle(name)
        direction = direction or bundle.perturb_direction
        mode = mode or "scale"
        Drift(Fraction(0), mode=mode, direction=direction)
        description, ceiling, evaluate = bundle.perturb_builder(
            direction, mode, seeds, steps, seed
        )
        return PerturbTarget(
            name=name,
            description=description,
            direction=direction,
            mode=mode,
            ceiling=ceiling,
            evaluate=_guarded(evaluate),
            expected_broken=False,
            seeds=seeds,
            steps=steps,
            seed=seed,
        )
    if name not in _BUILDERS:
        raise ReproError(
            "unknown perturbation target {!r}; expected one of {}".format(
                name, ", ".join(_BUILDERS)
            )
        )
    builder, canonical_direction = _BUILDERS[name]
    direction = direction or canonical_direction
    mode = mode or "scale"
    # Validate direction/mode eagerly (Drift owns the vocabulary).
    Drift(Fraction(0), mode=mode, direction=direction)
    description, ceiling, evaluate = builder(direction, mode, seeds, steps, seed)
    return PerturbTarget(
        name=name,
        description=description,
        direction=direction,
        mode=mode,
        ceiling=ceiling,
        evaluate=_guarded(evaluate),
        expected_broken=name in _EXPECTED_BROKEN,
        seeds=seeds,
        steps=steps,
        seed=seed,
    )


def probe_tolerance(
    name: str,
    epsilon: Fraction,
    budget: Optional[Budget] = None,
    direction: Optional[str] = None,
    mode: Optional[str] = None,
    seeds: int = 2,
    steps: int = 60,
    seed: int = 0,
) -> Tuple[PerturbTarget, CheckOutcome, CheckOutcome]:
    """Evaluate a target at ε = 0 and at ``epsilon`` (each probe under a
    fresh copy of ``budget``).  The lint rule R014 uses this to flag
    fragile bounds: nominal passes but even a small drift fails."""
    target = build_perturb_target(
        name, direction=direction, mode=mode, seeds=seeds, steps=steps, seed=seed
    )
    nominal = target.evaluate(
        Fraction(0), budget.renew() if budget is not None else None
    )
    probe = target.evaluate(
        Fraction(epsilon), budget.renew() if budget is not None else None
    )
    return target, nominal, probe
