"""Adversarial scheduling strategies.

The paper's bounds are attained at the *edges* of the per-step
``Ft``/``Lt`` windows, so an adversary probing a perturbed system
should live there.  These strategies extend :mod:`repro.sim.strategies`
(motivated by the adversarial schedulers of Lynch–Saias–Segala's
randomized time-bound analysis, PAPERS.md): deterministic functions of
a seed, exact times, usable anywhere a
:class:`~repro.sim.strategies.Strategy` is.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import Hashable, Optional, Sequence, Tuple

from repro.sim.strategies import Option, Strategy

__all__ = ["AdversarialStrategy", "DeadlinePushStrategy", "JitterStrategy"]


class AdversarialStrategy(Strategy):
    """Alternate between the two edge regimes of every window.

    Even steps stress the ``Ft`` side: fire the action whose window
    opens *latest* at its earliest instant — the run's events bunch up
    at their lower bounds.  Odd steps stress the ``Lt`` side: fire the
    action with the *tightest* deadline exactly at that deadline.
    Alternating visits both ends of every prediction window along one
    run, which is where inequality mappings and Definition 2.1/2.2
    checks have zero slack.
    """

    def __init__(self, rng: Optional[random.Random] = None, unbounded_extension=1):
        super().__init__(rng, unbounded_extension)
        self._step = 0

    def choose(self, state, options: Sequence[Option]) -> Tuple[Hashable, object]:
        self._step += 1
        if self._step % 2:
            # Ft regime: latest-opening window, earliest firing.
            latest_opening = max(lo for _a, lo, _h in options)
            candidates = [opt for opt in options if opt[1] == latest_opening]
            action, lo, hi = self.rng.choice(candidates)
            now = getattr(state, "now", None)
            if now is not None and lo == now:
                # Zero-lower-bound fillers: firing "now" forever is a
                # Zeno loop; push them to their deadline instead.
                return action, self._cap(lo, hi)
            return action, lo
        # Lt regime: tightest deadline, fired exactly at the deadline.
        capped = [(a, lo, self._cap(lo, hi)) for a, lo, hi in options]
        tightest = min(t for _a, _lo, t in capped)
        candidates = [(a, t) for a, _lo, t in capped if t == tightest]
        return self.rng.choice(candidates)


class DeadlinePushStrategy(Strategy):
    """Always fire the deadline-attaining action exactly at the
    deadline ``min Lt`` — the lazy adversary that makes every upper
    bound in the system bind simultaneously.  A claim whose upper end a
    perturbation has pushed past its requirement fails fastest under
    this schedule."""

    def choose(self, state, options: Sequence[Option]) -> Tuple[Hashable, object]:
        capped = [(a, self._cap(lo, hi)) for a, lo, hi in options]
        deadline = min(t for _a, t in capped)
        candidates = [(a, t) for a, t in capped if t == deadline]
        return self.rng.choice(candidates)


class JitterStrategy(Strategy):
    """Wrap another strategy and jitter its chosen firing times.

    After the inner strategy picks ``(action, t)``, the time is
    perturbed by a random offset drawn from the multiples of
    ``quantum`` in ``[-jitter, +jitter]``, then clamped back into the
    action's own window — so every run is still a valid execution of
    ``time(A, U)``, just displaced from the inner strategy's intent.
    This models measurement/scheduling noise on top of any nominal
    schedule (e.g. an eager schedule on a drifting clock).
    """

    def __init__(
        self,
        inner: Strategy,
        jitter=Fraction(1, 4),
        quantum=Fraction(1, 16),
        rng: Optional[random.Random] = None,
    ):
        super().__init__(rng or inner.rng, inner.unbounded_extension)
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self.inner = inner
        self.jitter = Fraction(jitter)
        self.quantum = Fraction(quantum)

    def choose(self, state, options: Sequence[Option]) -> Tuple[Hashable, object]:
        action, t = self.inner.choose(state, options)
        windows = [(lo, hi) for a, lo, hi in options if a == action]
        if not windows or self.jitter == 0:
            return action, t
        lo, hi = windows[0]
        hi = self._cap(lo, hi)
        steps = int(self.jitter / self.quantum)
        if steps == 0:
            return action, t
        offset = self.quantum * self.rng.randint(-steps, steps)
        jittered = t + offset
        if jittered < lo:
            jittered = lo
        if jittered > hi:
            jittered = hi
        return action, jittered

    def pick_post(self, posts: Sequence) -> object:
        return self.inner.pick_post(posts)
