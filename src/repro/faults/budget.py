"""A cross-cutting resource budget for graceful degradation.

Perturbed systems routinely blow up: a widened boundmap multiplies zone
counts, a dropped action can make a simulator spin toward quiescence,
and an over-tightened bound can make exhaustive checks explode before
they fail.  A :class:`Budget` caps states, steps, and wall time across
*all* the engines (``ioa.explorer``, ``sim.Simulator``, ``zones``), so
a checker handed a budget always returns a partial result flagged
``exhausted_budget`` instead of hanging or raising.

The budget is *shared and sticky*: one object may be threaded through
several engine calls, charges accumulate across them, and once any
limit trips the budget stays exhausted (``renew`` makes a fresh one
with the same limits for the next probe).
"""

from __future__ import annotations

import time
from typing import Optional

__all__ = ["Budget"]


class Budget:
    """Caps on exploration states, simulation/checking steps, and wall
    time.  ``None`` for any limit means unlimited.

    Engines call :meth:`charge_state` / :meth:`charge_step` before
    consuming a unit of work; a ``False`` return means the budget is
    exhausted and the engine must stop and report a partial outcome.
    """

    def __init__(
        self,
        max_states: Optional[int] = None,
        max_steps: Optional[int] = None,
        wall_time: Optional[float] = None,
    ):
        for name, limit in (
            ("max_states", max_states),
            ("max_steps", max_steps),
            ("wall_time", wall_time),
        ):
            if limit is not None and limit <= 0:
                raise ValueError("{} must be positive, got {!r}".format(name, limit))
        self.max_states = max_states
        self.max_steps = max_steps
        self.wall_time = wall_time
        self.states_used = 0
        self.steps_used = 0
        self._started = time.monotonic()
        self._exhausted_reason: Optional[str] = None

    # -- charging -----------------------------------------------------

    def charge_state(self, n: int = 1) -> bool:
        """Charge ``n`` discovered states; False when the budget is (or
        becomes) exhausted — the unit is then *not* consumed."""
        if not self.ok():
            return False
        if self.max_states is not None and self.states_used + n > self.max_states:
            self._exhausted_reason = "max_states={} reached".format(self.max_states)
            return False
        self.states_used += n
        return True

    def charge_step(self, n: int = 1) -> bool:
        """Charge ``n`` steps/transitions; same contract as
        :meth:`charge_state`."""
        if not self.ok():
            return False
        if self.max_steps is not None and self.steps_used + n > self.max_steps:
            self._exhausted_reason = "max_steps={} reached".format(self.max_steps)
            return False
        self.steps_used += n
        return True

    # -- inspection ---------------------------------------------------

    def ok(self) -> bool:
        """True while no limit has tripped (checks the wall clock)."""
        if self._exhausted_reason is not None:
            return False
        if (
            self.wall_time is not None
            and time.monotonic() - self._started > self.wall_time
        ):
            self._exhausted_reason = "wall_time={}s exceeded".format(self.wall_time)
            return False
        return True

    @property
    def exhausted(self) -> bool:
        return not self.ok()

    @property
    def reason(self) -> Optional[str]:
        """Why the budget is exhausted (None while it is not)."""
        self.ok()
        return self._exhausted_reason

    def elapsed(self) -> float:
        return time.monotonic() - self._started

    def renew(self) -> "Budget":
        """A fresh budget with the same limits and zero charges — one
        per tolerance-search probe, so probes don't starve each other."""
        return Budget(self.max_states, self.max_steps, self.wall_time)

    def __repr__(self) -> str:
        return (
            "Budget(max_states={!r}, max_steps={!r}, wall_time={!r}, "
            "states_used={}, steps_used={}{})".format(
                self.max_states,
                self.max_steps,
                self.wall_time,
                self.states_used,
                self.steps_used,
                ", exhausted: " + self._exhausted_reason
                if self._exhausted_reason
                else "",
            )
        )
