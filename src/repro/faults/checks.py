"""Budget-guarded check adapters: every verdict as a `CheckOutcome`.

The tolerance analyzer composes three kinds of evidence — mapping/chain
checks on simulated runs, Lemma 2.1 acceptance of perturbed behaviors
against the *nominal* ``(A, b)``, and exact zone verification of the
nominal claims on the perturbed system.  Each adapter here normalises
one of those into a :class:`~repro.core.checker.CheckOutcome`,
converting budget exhaustion and engine errors into partial or failing
outcomes instead of exceptions, so a tolerance search never hangs and
never dies mid-probe.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional, Sequence, Tuple

from repro.core.checker import CheckOutcome, check_chain_on_run, check_mapping_on_run
from repro.core.mappings import InequalityMapping, MappingChain
from repro.core.time_state import TimeState
from repro.errors import ReproError, ZoneError
from repro.faults.budget import Budget
from repro.timed.boundmap import TimedAutomaton
from repro.timed.interval import Interval
from repro.timed.semantics import check_lemma_2_1
from repro.zones.analysis import absolute_event_bounds, search_reachable_state
from repro.zones.verify import verify_event_condition

__all__ = [
    "slack_refinement_mapping",
    "mapping_run_check",
    "lemma_2_1_check",
    "zone_condition_check",
    "absolute_bounds_check",
    "safety_check",
]


def slack_refinement_mapping(
    source,
    target,
    pairs: Optional[Sequence[Tuple[str, str]]] = None,
    name: Optional[str] = None,
) -> InequalityMapping:
    """A containment mapping between two requirement-style automata:
    every paired target condition's window must *contain* the source's
    (``Ft`` no later, ``Lt`` no earlier).

    This is the robust-refinement link of Chilton et al.'s timed
    specification theories, phrased as a strong possibilities mapping:
    a tightened system's own requirements automaton refines the nominal
    one as long as its predictions stay inside the nominal windows.
    ``pairs`` maps source condition names to target condition names
    (default: identical names on both sides).
    """
    if pairs is None:
        source_names = {c.name for c in source.conditions}
        pairs = tuple(
            (c.name, c.name) for c in target.conditions if c.name in source_names
        )
    pair_list = tuple(pairs)

    def predicate(u: TimeState, s: TimeState) -> bool:
        for source_name, target_name in pair_list:
            if target.lt(u, target_name) < source.lt(s, source_name):
                return False
            if target.ft(u, target_name) > source.ft(s, source_name):
                return False
        return True

    def explain(u: TimeState, s: TimeState) -> str:
        problems = []
        for source_name, target_name in pair_list:
            if target.lt(u, target_name) < source.lt(s, source_name):
                problems.append(
                    "Lt({}) = {!r} < source Lt({}) = {!r}".format(
                        target_name,
                        target.lt(u, target_name),
                        source_name,
                        source.lt(s, source_name),
                    )
                )
            if target.ft(u, target_name) > source.ft(s, source_name):
                problems.append(
                    "Ft({}) = {!r} > source Ft({}) = {!r}".format(
                        target_name,
                        target.ft(u, target_name),
                        source_name,
                        source.ft(s, source_name),
                    )
                )
        return "; ".join(problems) or "containment holds (?)"

    return InequalityMapping(
        source=source,
        target=target,
        predicate=predicate,
        name=name or "slack refinement {} -> {}".format(source.name, target.name),
        explain=explain,
    )


def mapping_run_check(mapping, runs: Iterable, budget: Optional[Budget] = None) -> CheckOutcome:
    """Check a mapping (or :class:`MappingChain`) over several runs,
    folding the per-run outcomes: the first failure wins, steps
    accumulate, and budget exhaustion in any run marks the total."""
    check = check_chain_on_run if isinstance(mapping, MappingChain) else check_mapping_on_run
    total = 0
    exhausted = False
    for run in runs:
        outcome = check(mapping, run, budget=budget)
        total += outcome.steps_checked
        exhausted = exhausted or outcome.exhausted_budget
        if not outcome.ok:
            return CheckOutcome(
                False,
                total,
                outcome.detail,
                failing_source_state=outcome.failing_source_state,
                failing_target_state=outcome.failing_target_state,
                exhausted_budget=exhausted,
            )
        if budget is not None and budget.exhausted:
            exhausted = True
            break
    detail = "budget exhausted after {} steps".format(total) if exhausted else ""
    return CheckOutcome(True, total, detail, exhausted_budget=exhausted)


def lemma_2_1_check(
    nominal: TimedAutomaton,
    behaviors: Iterable,
    budget: Optional[Budget] = None,
) -> CheckOutcome:
    """Accept each timed behavior against the *nominal* ``(A, b)`` via
    both Definition 2.1 and Definition 2.2 (:func:`check_lemma_2_1`,
    semi-execution variant for finite prefixes).  A perturbed system
    whose behaviors stray outside the nominal bounds fails here."""
    total = 0
    exhausted = False
    for seq in behaviors:
        steps = len(seq.events)
        if budget is not None and not budget.charge_step(max(steps, 1)):
            exhausted = True
            break
        report = check_lemma_2_1(nominal, seq, semi=True)
        total += steps
        if not report.accepted:
            violation = report.definition_2_1 or report.definition_2_2
            return CheckOutcome(
                False,
                total,
                "behavior rejected by nominal (A, b): {}".format(violation),
                exhausted_budget=exhausted,
            )
        if not report.agree:
            return CheckOutcome(
                False,
                total,
                "Lemma 2.1 checkers disagree on a perturbed behavior",
                exhausted_budget=exhausted,
            )
    detail = "budget exhausted after {} steps".format(total) if exhausted else ""
    return CheckOutcome(True, total, detail, exhausted_budget=exhausted)


def zone_condition_check(
    timed: TimedAutomaton,
    trigger: Hashable,
    target: Hashable,
    claimed: Interval,
    occurrences: int = 1,
    budget: Optional[Budget] = None,
    max_nodes: int = 200_000,
) -> CheckOutcome:
    """Exact check that the perturbed system still meets a *nominal*
    event-to-event claim, degraded gracefully under budget pressure."""
    try:
        report = verify_event_condition(
            timed,
            trigger,
            target,
            claimed,
            occurrences=occurrences,
            max_nodes=max_nodes,
            budget=budget,
        )
    except ZoneError as exc:
        if budget is not None and budget.exhausted:
            return CheckOutcome(
                True, 0, "budget exhausted before any zone measurement", exhausted_budget=True
            )
        return CheckOutcome(False, 0, "zone check failed: {}".format(exc))
    nodes = report.exact.nodes if report.exact is not None else 0
    return CheckOutcome(
        report.verdict.holds,
        nodes,
        "zone verdict: {} (claimed {!r}, exact {!r})".format(
            report.verdict.value, claimed, report.exact
        ),
        exhausted_budget=report.exhausted_budget,
    )


def absolute_bounds_check(
    timed: TimedAutomaton,
    measure: Hashable,
    claimed: Interval,
    occurrence: int = 1,
    budget: Optional[Budget] = None,
    max_nodes: int = 200_000,
) -> CheckOutcome:
    """Exact check that an event's absolute firing bounds stay inside a
    nominal claim (e.g. the resource manager's first-GRANT window)."""
    try:
        bounds = absolute_event_bounds(
            timed, measure, occurrence=occurrence, max_nodes=max_nodes, budget=budget
        )
    except ZoneError as exc:
        if budget is not None and budget.exhausted:
            return CheckOutcome(
                True, 0, "budget exhausted before any zone measurement", exhausted_budget=True
            )
        return CheckOutcome(False, 0, "zone check failed: {}".format(exc))
    return CheckOutcome(
        bounds.within(claimed),
        bounds.nodes,
        "absolute bounds {!r} vs claimed {!r}".format(bounds, claimed),
        exhausted_budget=bounds.exhausted_budget,
    )


def safety_check(
    timed: TimedAutomaton,
    predicate,
    describe: str = "bad state",
    budget: Optional[Budget] = None,
    max_nodes: int = 200_000,
) -> CheckOutcome:
    """Exact timed safety: no reachable state satisfies ``predicate``.
    Inconclusive (budget-cut) sweeps come back ok-but-partial."""
    try:
        result = search_reachable_state(
            timed, predicate, max_nodes=max_nodes, budget=budget
        )
    except ReproError as exc:
        return CheckOutcome(False, 0, "safety search failed: {}".format(exc))
    if result.state is not None:
        return CheckOutcome(
            False,
            result.nodes,
            "{} reachable: {!r}".format(describe, result.state),
            exhausted_budget=result.exhausted_budget,
        )
    return CheckOutcome(
        True,
        result.nodes,
        ""
        if result.conclusive
        else "safety sweep inconclusive (truncated at {} nodes)".format(result.nodes),
        exhausted_budget=result.exhausted_budget,
    )
