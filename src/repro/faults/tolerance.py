"""Binary search for timing tolerance.

The paper's proofs are inequalities, so each admits a largest drift ε
under which it still goes through.  :func:`search_tolerance` brackets
that ε by exact-``Fraction`` bisection over a caller-supplied
*evaluation* — typically a fold of mapping checks, Lemma 2.1
acceptance, and zone verification (see :mod:`repro.faults.targets`) —
and reports the result as a :class:`ToleranceReport`.

Every probe runs under a fresh :class:`~repro.faults.budget.Budget`
(when a factory is given), so one pathological ε cannot hang the whole
search; probe exhaustion is propagated as ``exhausted_budget`` on the
report, marking the verdict best-effort.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Optional, Tuple

from repro.core.checker import CheckOutcome
from repro.faults.budget import Budget

__all__ = ["ToleranceReport", "search_tolerance"]

#: evaluate(epsilon, budget) -> folded outcome of all checks at that ε.
Evaluation = Callable[[Fraction, Optional[Budget]], CheckOutcome]


@dataclass
class ToleranceReport:
    """How much drift a system's proofs survive.

    - ``broken`` — the *nominal* (ε = 0) checks already fail; the
      system does not meet its own requirements, so tolerance is
      meaningless (``tolerance`` is None).
    - ``tolerance`` — the largest probed ε at which every check passed.
    - ``breaking_epsilon`` — the smallest probed ε at which a check
      failed (None when the search ceiling passed: ``ceiling_hit``).
    - ``exhausted_budget`` — some probe was cut short; the bracket is
      best-effort rather than exact for the configured budget.
    """

    system: str
    direction: str
    mode: str
    broken: bool
    tolerance: Optional[Fraction]
    breaking_epsilon: Optional[Fraction]
    ceiling: Fraction
    ceiling_hit: bool
    resolution: Fraction
    probes: int
    exhausted_budget: bool
    detail: str = ""

    @property
    def fragile(self) -> bool:
        """True when any ε > 0 at all breaks the system (or the system
        is already broken at ε = 0) — the bounds have zero slack."""
        return self.broken or (
            self.tolerance is not None and self.tolerance == 0 and not self.ceiling_hit
        )

    def to_dict(self) -> dict:
        def render(value):
            return None if value is None else str(value)

        return {
            "system": self.system,
            "direction": self.direction,
            "mode": self.mode,
            "broken": self.broken,
            "tolerance": render(self.tolerance),
            "breaking_epsilon": render(self.breaking_epsilon),
            "ceiling": render(self.ceiling),
            "ceiling_hit": self.ceiling_hit,
            "resolution": render(self.resolution),
            "probes": self.probes,
            "exhausted_budget": self.exhausted_budget,
            "fragile": self.fragile,
            "detail": self.detail,
        }

    def render(self) -> str:
        if self.broken:
            verdict = "BROKEN at eps=0: {}".format(self.detail)
        elif self.ceiling_hit:
            verdict = "tolerance >= ceiling {} (search cap hit)".format(self.ceiling)
        else:
            verdict = "tolerance = {} (breaks at {})".format(
                self.tolerance, self.breaking_epsilon
            )
        qualifier = " [budget exhausted: best-effort]" if self.exhausted_budget else ""
        return "{} [{} {}]: {}{}".format(
            self.system, self.direction, self.mode, verdict, qualifier
        )


def search_tolerance(
    evaluate: Evaluation,
    *,
    system: str = "system",
    direction: str = "tighten",
    mode: str = "scale",
    ceiling: Fraction = Fraction(1),
    resolution: Fraction = Fraction(1, 64),
    budget_factory: Optional[Callable[[], Budget]] = None,
) -> ToleranceReport:
    """Bracket the largest passing ε in ``[0, ceiling]`` to within
    ``resolution`` by bisection.

    Monotonicity (more drift never helps) is the modelling assumption
    behind bisection, and holds for the drift operators here: every
    probed ε's verdict is real — the bracket endpoints were actually
    evaluated, never interpolated.
    """
    ceiling = Fraction(ceiling)
    resolution = Fraction(resolution)
    if ceiling <= 0:
        raise ValueError("ceiling must be positive")
    if resolution <= 0:
        raise ValueError("resolution must be positive")

    probes = 0
    exhausted = False

    def probe(eps: Fraction) -> CheckOutcome:
        nonlocal probes, exhausted
        probes += 1
        budget = budget_factory() if budget_factory is not None else None
        outcome = evaluate(eps, budget)
        exhausted = exhausted or outcome.exhausted_budget
        return outcome

    nominal = probe(Fraction(0))
    if not nominal.ok:
        return ToleranceReport(
            system=system,
            direction=direction,
            mode=mode,
            broken=True,
            tolerance=None,
            breaking_epsilon=Fraction(0),
            ceiling=ceiling,
            ceiling_hit=False,
            resolution=resolution,
            probes=probes,
            exhausted_budget=exhausted,
            detail=nominal.detail,
        )

    at_ceiling = probe(ceiling)
    if at_ceiling.ok:
        return ToleranceReport(
            system=system,
            direction=direction,
            mode=mode,
            broken=False,
            tolerance=ceiling,
            breaking_epsilon=None,
            ceiling=ceiling,
            ceiling_hit=True,
            resolution=resolution,
            probes=probes,
            exhausted_budget=exhausted,
            detail=at_ceiling.detail,
        )

    lo = Fraction(0)  # known passing
    hi = ceiling  # known failing
    detail = at_ceiling.detail
    while hi - lo > resolution:
        mid = (lo + hi) / 2
        outcome = probe(mid)
        if outcome.ok:
            lo = mid
        else:
            hi = mid
            detail = outcome.detail
    return ToleranceReport(
        system=system,
        direction=direction,
        mode=mode,
        broken=False,
        tolerance=lo,
        breaking_epsilon=hi,
        ceiling=ceiling,
        ceiling_hit=False,
        resolution=resolution,
        probes=probes,
        exhausted_budget=exhausted,
        detail=detail,
    )
