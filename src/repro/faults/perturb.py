"""Perturbation operators on timed automata.

Physical clocks drift and jitter; links delay and drop.  These
operators produce the corresponding *models*: a boundmap whose
intervals have been scaled or shifted by an exact ``Fraction`` ε, a
condition set whose claims have been weakened or tightened, and a base
automaton with actions delayed or dropped.  The tolerance analyzer
(:mod:`repro.faults.tolerance`) then asks how large ε can get before
the paper's proofs stop going through.

Directions follow the two sides of a proof:

- ``widen`` — the *implementation* gets sloppier (clock drift outward:
  earlier lower ends, later upper ends).  Stresses safety properties
  and any claim whose bound the paper shows *tight*.
- ``tighten`` — the implementation gets more precise (drift inward).
  A sound mapping must keep holding, until tightening inverts an
  interval and the system itself becomes ill-formed — that inversion
  point is a natural tolerance ceiling.

All arithmetic is exact; ``[0, ∞]`` trivial bounds (deliberately
untimed environment classes) are left untouched by boundmap
perturbation so ε only stresses classes that carry timing content.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from fractions import Fraction
from typing import FrozenSet, Hashable, Iterable, Optional, Sequence, Tuple

from repro.errors import PerturbationError, TimingConditionError
from repro.ioa.automaton import IOAutomaton
from repro.timed.boundmap import Boundmap, TimedAutomaton
from repro.timed.conditions import TimingCondition
from repro.timed.interval import Interval

__all__ = [
    "Drift",
    "perturb_interval",
    "perturb_boundmap",
    "perturb_conditions",
    "delay_class",
    "drop_actions",
    "ActionDropAutomaton",
]

MODES = ("scale", "shift")
DIRECTIONS = ("widen", "tighten")


@dataclass(frozen=True)
class Drift:
    """A clock drift/jitter specification.

    ``mode='scale'`` models *rate* drift — each bound end moves by a
    relative factor of ε; ``mode='shift'`` models *offset* jitter —
    each end moves by an absolute ε.  ``classes`` restricts the drift
    to the named partition classes (None: global).
    """

    epsilon: Fraction
    mode: str = "scale"
    direction: str = "tighten"
    classes: Optional[FrozenSet[str]] = None

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise PerturbationError(
                "unknown drift mode {!r}; expected one of {}".format(self.mode, MODES)
            )
        if self.direction not in DIRECTIONS:
            raise PerturbationError(
                "unknown drift direction {!r}; expected one of {}".format(
                    self.direction, DIRECTIONS
                )
            )
        if isinstance(self.epsilon, float):
            raise PerturbationError(
                "epsilon must be exact (int or Fraction), got float {!r}".format(
                    self.epsilon
                )
            )
        object.__setattr__(self, "epsilon", Fraction(self.epsilon))
        if self.epsilon < 0:
            raise PerturbationError("epsilon must be non-negative")
        if self.classes is not None:
            object.__setattr__(self, "classes", frozenset(self.classes))

    def applies_to(self, class_name: str) -> bool:
        return self.classes is None or class_name in self.classes

    def describe(self) -> str:
        scope = "global" if self.classes is None else ",".join(sorted(self.classes))
        return "{} {} eps={} ({})".format(self.direction, self.mode, self.epsilon, scope)


def perturb_interval(interval: Interval, drift: Drift) -> Interval:
    """Apply a drift to one bound interval.

    Raises :class:`PerturbationError` when the drifted interval is no
    longer well-formed (tightening inverted it, or the upper end hit 0)
    — the system has no timed semantics at this ε.
    """
    eps = drift.epsilon
    lo, hi = interval.lo, interval.hi
    hi_inf = isinstance(hi, float) and math.isinf(hi)
    if drift.mode == "scale":
        if drift.direction == "widen":
            new_lo = lo * (1 - eps) if eps <= 1 else 0
            new_hi = hi if hi_inf else hi * (1 + eps)
        else:
            new_lo = lo * (1 + eps)
            new_hi = hi if hi_inf else hi * (1 - eps)
    else:
        if drift.direction == "widen":
            new_lo = max(0, lo - eps)
            new_hi = hi if hi_inf else hi + eps
        else:
            new_lo = lo + eps
            new_hi = hi if hi_inf else hi - eps
    try:
        return Interval(new_lo, new_hi)
    except TimingConditionError as exc:
        raise PerturbationError(
            "drift {} collapses {!r}: {}".format(drift.describe(), interval, exc)
        ) from exc


def perturb_boundmap(timed: TimedAutomaton, drift: Drift) -> TimedAutomaton:
    """Apply a drift to the boundmap of ``(A, b)``, returning a new
    timed automaton over the *same* base ``A``.

    Trivial ``[0, ∞]`` bounds are left unchanged: they carry no timing
    content, and drifting them would spuriously constrain classes the
    model deliberately leaves untimed.
    """
    perturbed = {}
    for name, interval in timed.boundmap.items():
        if drift.applies_to(name) and not interval.is_trivial:
            perturbed[name] = perturb_interval(interval, drift)
        else:
            perturbed[name] = interval
    return TimedAutomaton(timed.automaton, Boundmap(perturbed))


def perturb_conditions(
    conditions: Iterable[TimingCondition],
    drift: Drift,
    names: Optional[Iterable[str]] = None,
) -> Tuple[TimingCondition, ...]:
    """Weaken (``widen``) or tighten the intervals of ``U``-style
    timing conditions, leaving their trigger/start/π structure alone.

    ``names`` restricts the perturbation to the named conditions; a
    drift with ``classes`` set restricts by the same field.
    """
    wanted = None if names is None else set(names)
    out = []
    for cond in conditions:
        selected = (wanted is None or cond.name in wanted) and drift.applies_to(
            cond.name
        )
        if selected and not cond.interval.is_trivial:
            out.append(replace(cond, interval=perturb_interval(cond.interval, drift)))
        else:
            out.append(cond)
    return tuple(out)


def delay_class(timed: TimedAutomaton, class_name: str, delay) -> TimedAutomaton:
    """Inject a fixed delay into one component: both bound ends of
    ``class_name`` move later by ``delay`` (a slow process or link).
    """
    if delay < 0:
        raise PerturbationError("delay must be non-negative")
    perturbed = {}
    for name, interval in timed.boundmap.items():
        if name == class_name:
            perturbed[name] = interval.shift(delay)
        else:
            perturbed[name] = interval
    if class_name not in perturbed:
        raise PerturbationError(
            "no partition class {!r} in {}".format(class_name, timed.name)
        )
    return TimedAutomaton(timed.automaton, Boundmap(perturbed))


class ActionDropAutomaton(IOAutomaton):
    """A wrapper automaton in which a set of actions never fires.

    Models a lossy link or a crashed component in a composed system:
    the signature and partition are unchanged (the class still exists —
    it just never gets a chance), but every dropped action's transition
    relation is empty.  Downstream effects are exactly the failure
    modes the budgeted checkers must survive: starved classes,
    quiescence, or a :class:`~repro.errors.SchedulingDeadlockError`
    when a dropped class carries a finite deadline some condition still
    predicts.
    """

    def __init__(self, base: IOAutomaton, dropped: Iterable[Hashable]):
        self.base = base
        self.dropped = frozenset(dropped)
        self.name = "{}-drop({})".format(
            base.name, ",".join(sorted(map(repr, self.dropped)))
        )

    @property
    def signature(self):
        return self.base.signature

    @property
    def partition(self):
        return self.base.partition

    def start_states(self):
        return self.base.start_states()

    def transitions(self, state, action):
        if action in self.dropped:
            return ()
        return self.base.transitions(state, action)


def drop_actions(
    timed: TimedAutomaton, actions: Iterable[Hashable]
) -> TimedAutomaton:
    """Drop ``actions`` from a timed automaton's base, keeping the
    boundmap (the partition is unchanged, so it still validates)."""
    return TimedAutomaton(
        ActionDropAutomaton(timed.automaton, actions), timed.boundmap
    )
