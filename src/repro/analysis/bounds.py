"""Extracting timing measurements from timed behaviors.

Given timed behaviors (sequences of ``(action, time)`` pairs), compute
first-occurrence times, inter-occurrence gaps, and aggregate them over
run batches — the measurement side of experiments E1 and E4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, List, Optional, Sequence, Tuple, Union

from repro.timed.interval import Interval
from repro.timed.timed_sequence import TimedEvent

__all__ = [
    "occurrence_times",
    "first_occurrence",
    "gaps",
    "separations_after",
    "BoundsAccumulator",
]

Behavior = Sequence[TimedEvent]
ActionMatcher = Union[Hashable, Callable[[Hashable], bool]]


def _matcher(action: ActionMatcher) -> Callable[[Hashable], bool]:
    if callable(action):
        return action
    return lambda a: a == action


def occurrence_times(behavior: Behavior, action: ActionMatcher) -> List[object]:
    """The times of every occurrence of ``action`` in order."""
    match = _matcher(action)
    return [ev.time for ev in behavior if match(ev.action)]


def first_occurrence(behavior: Behavior, action: ActionMatcher) -> Optional[object]:
    """The time of the first occurrence, or None."""
    match = _matcher(action)
    for ev in behavior:
        if match(ev.action):
            return ev.time
    return None


def gaps(times: Sequence[object]) -> List[object]:
    """Differences between consecutive times."""
    return [later - earlier for earlier, later in zip(times, times[1:])]


def separations_after(
    behavior: Behavior, trigger: ActionMatcher, target: ActionMatcher
) -> List[object]:
    """For each ``trigger`` occurrence, the delay to the next ``target``
    occurrence (unmatched triggers are skipped) — the shape measured by
    conditions like ``U_{k,n}``."""
    match_trigger = _matcher(trigger)
    match_target = _matcher(target)
    pending: Optional[object] = None
    result: List[object] = []
    for ev in behavior:
        if pending is not None and match_target(ev.action):
            result.append(ev.time - pending)
            pending = None
        if match_trigger(ev.action):
            pending = ev.time
    return result


@dataclass
class BoundsAccumulator:
    """Streaming min/max/count/total over measured values."""

    count: int = 0
    minimum: object = math.inf
    maximum: object = -math.inf
    total: object = 0

    def add(self, value) -> None:
        self.count += 1
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        self.total = self.total + value

    def add_all(self, values: Iterable) -> "BoundsAccumulator":
        for value in values:
            self.add(value)
        return self

    @property
    def mean(self):
        if self.count == 0:
            return None
        return self.total / self.count

    def all_within(self, interval: Interval) -> bool:
        """True when every recorded value fell inside ``interval``
        (vacuously true when empty)."""
        if self.count == 0:
            return True
        return interval.contains(self.minimum) and interval.contains(self.maximum)

    def span(self) -> Optional[Interval]:
        """The observed [min, max] as an interval, or None when empty."""
        if self.count == 0:
            return None
        return Interval(self.minimum, self.maximum)

    def __repr__(self) -> str:
        if self.count == 0:
            return "BoundsAccumulator(empty)"
        return "BoundsAccumulator(n={}, min={!r}, max={!r})".format(
            self.count, self.minimum, self.maximum
        )
