"""Human-readable timelines of timed executions.

Renders a run (or its projection) as a time-ordered event log with the
predictive ``Ft/Lt`` components inline — the view one wants when a
mapping check fails and the offending step needs inspecting.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional

from repro.analysis.report import format_value
from repro.core.time_automaton import PredictiveTimeAutomaton
from repro.core.time_state import TimeState
from repro.timed.timed_sequence import TimedSequence

__all__ = ["render_timeline", "render_predictions", "timeline_lines"]


def render_predictions(
    automaton: PredictiveTimeAutomaton, state: TimeState, only: Optional[Iterable[str]] = None
) -> str:
    """One-line summary of a state's predictions:
    ``name∈[Ft, Lt]`` per condition, defaults elided."""
    names = list(only) if only is not None else [c.name for c in automaton.conditions]
    parts: List[str] = []
    for name in names:
        pred = state.preds[automaton.index_of(name)]
        if pred.is_default:
            continue
        parts.append(
            "{}∈[{}, {}]".format(name, format_value(pred.ft), format_value(pred.lt))
        )
    return " ".join(parts) if parts else "(all default)"


def timeline_lines(
    run: TimedSequence,
    automaton: Optional[PredictiveTimeAutomaton] = None,
    limit: Optional[int] = None,
) -> List[str]:
    """The timeline as a list of lines.

    With ``automaton`` given (and a run over :class:`TimeState`), each
    event line carries the post-state predictions.
    """
    lines: List[str] = []
    first = run.first_state
    if isinstance(first, TimeState):
        header = "t=0  START  As={!r}".format(first.astate)
        if automaton is not None:
            header += "  " + render_predictions(automaton, first)
    else:
        header = "t=0  START  {!r}".format(first)
    lines.append(header)
    for index, (_pre, event, post) in enumerate(run.triples()):
        if limit is not None and index >= limit:
            lines.append("… ({} more events)".format(len(run) - limit))
            break
        if isinstance(post, TimeState):
            line = "t={}  {!r}  As={!r}".format(
                format_value(event.time), event.action, post.astate
            )
            if automaton is not None:
                line += "  " + render_predictions(automaton, post)
        else:
            line = "t={}  {!r}  {!r}".format(
                format_value(event.time), event.action, post
            )
        lines.append(line)
    return lines


def render_timeline(
    run: TimedSequence,
    automaton: Optional[PredictiveTimeAutomaton] = None,
    limit: Optional[int] = None,
) -> str:
    """The timeline as one printable string."""
    return "\n".join(timeline_lines(run, automaton, limit))
