"""Plain-text tables for experiment output.

The benchmark harnesses print paper-vs-measured rows with this; no
dependency on any plotting or rich-text library.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterable, List, Sequence

__all__ = ["format_value", "Table"]


def format_value(value) -> str:
    """Compact rendering of times/bounds: exact for ints and small
    fractions, decimal otherwise, ``inf`` spelled out."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float) and math.isinf(value):
        return "inf" if value > 0 else "-inf"
    if isinstance(value, Fraction):
        if value.denominator == 1:
            return str(value.numerator)
        if value.denominator <= 100:
            return "{}/{}".format(value.numerator, value.denominator)
        return "{:.4g}".format(float(value))
    if isinstance(value, float):
        return "{:.4g}".format(value)
    return str(value)


class Table:
    """A fixed-header text table with aligned columns."""

    def __init__(self, title: str, headers: Sequence[str]):
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[str]] = []

    def add_row(self, *cells) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                "expected {} cells, got {}".format(len(self.headers), len(cells))
            )
        self.rows.append([format_value(c) if not isinstance(c, str) else c for c in cells])

    def to_dict(self) -> dict:
        """Machine-readable form (consumed by ``repro.obs.bench`` when
        folding benchmark-suite tables into a report)."""
        return {
            "title": self.title,
            "columns": list(self.headers),
            "rows": [list(row) for row in self.rows],
        }

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * len(self.title)]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def print(self) -> None:
        print()
        print(self.render())
