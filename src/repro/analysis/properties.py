"""The paper's requirement sets ``P`` (Section 4.2) and ``Q``
(Section 6.2) as checkable predicates on *finite prefixes* of timed
behaviors.

``P`` and ``Q`` constrain infinite behaviors; on a finite prefix we
check every obligation whose deadline falls inside the observed window
(the safety reading, matching Definition 3.1), plus a progress floor
for "infinitely many GRANTs".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.timed.timed_sequence import TimedEvent
from repro.systems.resource_manager import GRANT, ResourceManagerParams
from repro.systems.signal_relay import SIGNAL, RelayParams
from repro.analysis.bounds import gaps, occurrence_times

__all__ = ["PropertyReport", "check_P_prefix", "check_Q_prefix"]


@dataclass(frozen=True)
class PropertyReport:
    """Outcome of a prefix property check."""

    holds: bool
    detail: str = ""

    def __bool__(self) -> bool:
        return self.holds


def check_P_prefix(
    behavior: Sequence[TimedEvent],
    params: ResourceManagerParams,
    horizon,
) -> PropertyReport:
    """The Section 4.2 property set ``P``, on a prefix observed up to
    time ``horizon``:

    1. progress — at least ``floor(horizon / (k·c2 + l))`` GRANTs;
    2. the first GRANT time in ``[k·c1, k·c2 + l]`` (or none due yet);
    3. every inter-GRANT gap in ``[k·c1 − l, k·c2 + l]``.
    """
    times = occurrence_times(behavior, GRANT)
    period = params.k * params.c2 + params.l
    expected_floor = int(horizon // period)
    if len(times) < expected_floor:
        return PropertyReport(
            False,
            "only {} GRANTs by time {!r}; at least {} are forced".format(
                len(times), horizon, expected_floor
            ),
        )
    if not times:
        if horizon > period:
            return PropertyReport(False, "no GRANT although the deadline passed")
        return PropertyReport(True, "no GRANT due yet")
    first = times[0]
    if not params.first_grant_interval.contains(first):
        return PropertyReport(
            False,
            "first GRANT at {!r} outside {!r}".format(first, params.first_grant_interval),
        )
    for index, gap in enumerate(gaps(times)):
        if not params.grant_gap_interval.contains(gap):
            return PropertyReport(
                False,
                "gap #{} = {!r} outside {!r}".format(
                    index + 1, gap, params.grant_gap_interval
                ),
            )
    return PropertyReport(True, "{} GRANTs, all bounds met".format(len(times)))


def check_Q_prefix(
    behavior: Sequence[TimedEvent],
    params: RelayParams,
    horizon,
) -> PropertyReport:
    """The Section 6.2 property set ``Q`` on a prefix observed up to
    time ``horizon``:

    1. at most one ``SIGNAL_0`` and at most one ``SIGNAL_n``, with any
       ``SIGNAL_n`` preceded by a ``SIGNAL_0``;
    2. if ``SIGNAL_0`` occurred at ``t1`` and the deadline
       ``t1 + n·d2`` lies within the prefix, ``SIGNAL_n`` occurred;
    3. if both occurred, ``t2 − t1 ∈ [n·d1, n·d2]``.
    """
    t0s = occurrence_times(behavior, SIGNAL(0))
    tns = occurrence_times(behavior, SIGNAL(params.n))
    if len(t0s) > 1:
        return PropertyReport(False, "SIGNAL_0 occurred {} times".format(len(t0s)))
    if len(tns) > 1:
        return PropertyReport(False, "SIGNAL_n occurred {} times".format(len(tns)))
    if tns and not t0s:
        return PropertyReport(False, "SIGNAL_n without a SIGNAL_0")
    if not t0s:
        return PropertyReport(True, "no SIGNAL_0 yet")
    t1 = t0s[0]
    if not tns:
        if horizon > t1 + params.n * params.d2:
            return PropertyReport(
                False,
                "SIGNAL_n missing although its deadline {!r} passed".format(
                    t1 + params.n * params.d2
                ),
            )
        return PropertyReport(True, "SIGNAL_n not due yet")
    t2 = tns[0]
    if t2 < t1:
        return PropertyReport(False, "SIGNAL_n precedes SIGNAL_0")
    delay = t2 - t1
    if not params.end_to_end_interval.contains(delay):
        return PropertyReport(
            False,
            "delay {!r} outside {!r}".format(delay, params.end_to_end_interval),
        )
    return PropertyReport(True, "delay {!r} within bounds".format(delay))
