"""The operational baseline: recurrence/milestone interval analysis.

The paper (Sections 6.3 and 8, citing [LG89]) contrasts its assertional
mapping method with the traditional *operational* style, where a bound
is derived by chaining per-milestone intervals — e.g. "a tick within
``[c1, c2]``, then ``k−1`` more ticks, then a local step within
``[0, l]``".  This module implements that style as explicit interval
algebra; experiment E11 compares its results against the mapping-checked
and zone-exact bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.timed.interval import Interval
from repro.systems.resource_manager import ResourceManagerParams
from repro.systems.signal_relay import RelayParams

__all__ = [
    "Milestone",
    "MilestoneChain",
    "rm_first_grant_chain",
    "rm_grant_gap_chain",
    "relay_chain",
    "peterson_first_entry_chain",
    "fischer_first_entry_chain",
    "chain_bound",
]


@dataclass(frozen=True)
class Milestone:
    """One step of an operational argument: a named delay interval."""

    label: str
    delay: Interval


class MilestoneChain:
    """A sequence of milestones whose total delay is the Minkowski sum
    of the per-milestone intervals — the recurrence
    ``T_k = T_{k+1} + [d1, d2]`` unrolled."""

    def __init__(self, milestones: Sequence[Milestone]):
        self.milestones: Tuple[Milestone, ...] = tuple(milestones)

    def total(self) -> Interval:
        """The end-to-end bound (Minkowski sum of all milestone delays)."""
        total = self.milestones[0].delay
        for milestone in self.milestones[1:]:
            total = total + milestone.delay
        return total

    def explain(self) -> List[str]:
        """The argument, one line per milestone plus the total."""
        lines = [
            "{}: {!r}".format(m.label, m.delay) for m in self.milestones
        ]
        lines.append("total: {!r}".format(self.total()))
        return lines

    def __len__(self) -> int:
        return len(self.milestones)


def rm_first_grant_chain(params: ResourceManagerParams) -> MilestoneChain:
    """Operational argument for the time to the first ``GRANT``:
    ``k`` ticks at ``[c1, c2]`` each, then a local step in ``[0, l]``.
    Total: ``[k·c1, k·c2 + l]`` — Theorem 4.4's first bound."""
    ticks = [
        Milestone("tick {}".format(i + 1), Interval(params.c1, params.c2))
        for i in range(params.k)
    ]
    return MilestoneChain(ticks + [Milestone("grant step", Interval(0, params.l))])


def rm_grant_gap_chain(params: ResourceManagerParams) -> MilestoneChain:
    """Operational argument for the gap between GRANTs: the first tick
    after a GRANT arrives within ``[c1 − l, c2]`` (the previous tick may
    predate the GRANT by up to ``l`` — this is exactly the content of
    Lemma 4.1's invariant), then ``k−1`` full ticks, then a local step.
    Total: ``[k·c1 − l, k·c2 + l]`` — Theorem 4.4's gap bound."""
    milestones = [Milestone("first tick after grant", Interval(params.c1 - params.l, params.c2))]
    milestones += [
        Milestone("tick {}".format(i + 2), Interval(params.c1, params.c2))
        for i in range(params.k - 1)
    ]
    milestones.append(Milestone("grant step", Interval(0, params.l)))
    return MilestoneChain(milestones)


def relay_chain(params: RelayParams) -> MilestoneChain:
    """Operational argument for the relay: ``n`` hops of ``[d1, d2]``
    each.  Total: ``[n·d1, n·d2]`` — Theorem 6.4."""
    return MilestoneChain(
        [
            Milestone("hop {}".format(i + 1), Interval(params.d1, params.d2))
            for i in range(params.n)
        ]
    )


def peterson_first_entry_chain(step_interval: Interval) -> MilestoneChain:
    """Operational argument for Peterson's first entry under contention
    ([LG89] style): the eventual winner needs exactly three of its own
    steps — set its flag, set the turn, and one successful check — each
    within the step bound, and no interleaving of the other process can
    stall it longer (the last turn-writer yields priority).  Total:
    ``3 · [s1, s2]``, confirmed exactly by experiment E15."""
    return MilestoneChain(
        [
            Milestone("winner sets flag", step_interval),
            Milestone("winner sets turn", step_interval),
            Milestone("winner's successful check", step_interval),
        ]
    )


def fischer_first_entry_chain(a, b) -> MilestoneChain:
    """Operational argument for Fischer's first entry when all
    processes start contending: the *last* setter is the winner, and
    its set lands within ``[0, a]``; its successful check follows within
    ``[b, 2b]``.  Total: ``[b, a + 2b]``, confirmed exactly by the zone
    engine (tests/systems/test_fischer.py)."""
    return MilestoneChain(
        [
            Milestone("last (winning) set", Interval(0, a)),
            Milestone("winner's check after the wait", Interval(b, 2 * b)),
        ]
    )


def chain_bound(intervals: Sequence[Interval]) -> Interval:
    """Minkowski-sum a list of per-stage intervals (the generalised
    heterogeneous chain of the conclusions' two-event example)."""
    total = intervals[0]
    for interval in intervals[1:]:
        total = total + interval
    return total
