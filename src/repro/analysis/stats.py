"""Exact descriptive statistics for measured timing values.

Everything stays in exact arithmetic: percentiles interpolate with
Fractions, and interval coverage (how much of an exact bound interval a
sampler actually explored — the metric of experiment E14) is a
Fraction in ``[0, 1]``.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import List, Sequence, Tuple

from repro.errors import ReproError
from repro.timed.interval import Interval

__all__ = ["exact_percentile", "five_number_summary", "interval_coverage", "text_histogram"]


def exact_percentile(values: Sequence, q) -> object:
    """The ``q``-quantile (``0 ≤ q ≤ 1``) with exact linear
    interpolation between order statistics."""
    if not values:
        raise ReproError("percentile of an empty sample")
    q = Fraction(q)
    if not (0 <= q <= 1):
        raise ReproError("quantile must be within [0, 1]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    index = int(position)  # floor for nonnegative positions
    remainder = position - index
    if remainder == 0:
        return ordered[index]
    return ordered[index] + (ordered[index + 1] - ordered[index]) * remainder


def five_number_summary(values: Sequence) -> Tuple:
    """(min, Q1, median, Q3, max) with exact interpolation."""
    return tuple(
        exact_percentile(values, q)
        for q in (0, Fraction(1, 4), Fraction(1, 2), Fraction(3, 4), 1)
    )


def interval_coverage(values: Sequence, interval: Interval):
    """How much of ``interval`` the sample's span covers, as a Fraction
    in ``[0, 1]``: ``(max − min) / (hi − lo)``.

    1 means both ends were attained; 0 means at most a point was seen.
    Degenerate (zero-width) intervals count as fully covered by any
    non-empty sample; samples outside the interval raise.
    """
    if not values:
        return Fraction(0)
    low, high = min(values), max(values)
    if not (interval.contains(low) and interval.contains(high)):
        raise ReproError(
            "sample span [{!r}, {!r}] escapes the interval {!r}".format(
                low, high, interval
            )
        )
    width = interval.width
    if isinstance(width, float) and math.isinf(width):
        raise ReproError("coverage of an unbounded interval is undefined")
    if width == 0:
        return Fraction(1)
    return Fraction(high - low) / Fraction(width)


def text_histogram(values: Sequence, bins: int = 8, width: int = 40) -> List[str]:
    """A plain-text histogram (one line per bin) over the sample span."""
    if not values:
        return ["(empty sample)"]
    if bins < 1:
        raise ReproError("need at least one bin")
    low = Fraction(min(values))
    high = Fraction(max(values))
    if low == high:
        return ["{} | {} ({} values)".format(low, "#" * width, len(values))]
    step = (high - low) / bins
    counts = [0] * bins
    for value in values:
        index = int((Fraction(value) - low) / step)
        if index == bins:  # the maximum lands in the last bin
            index -= 1
        counts[index] += 1
    peak = max(counts)
    lines = []
    for i, count in enumerate(counts):
        left = low + step * i
        bar = "#" * (0 if peak == 0 else round(width * count / peak))
        lines.append(
            "{:>10} | {} ({})".format(_short(left), bar, count)
        )
    return lines


def _short(value) -> str:
    value = Fraction(value)
    if value.denominator == 1:
        return str(value.numerator)
    return "{:.3g}".format(float(value))
