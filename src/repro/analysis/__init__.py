"""Measurement, property checking, the operational baseline, and report
formatting for the experiments."""

from repro.analysis.bounds import (
    BoundsAccumulator,
    first_occurrence,
    gaps,
    occurrence_times,
    separations_after,
)
from repro.analysis.properties import PropertyReport, check_P_prefix, check_Q_prefix
from repro.analysis.recurrence import (
    Milestone,
    MilestoneChain,
    chain_bound,
    relay_chain,
    rm_first_grant_chain,
    rm_grant_gap_chain,
)
from repro.analysis.report import Table, format_value
from repro.analysis.stats import (
    exact_percentile,
    five_number_summary,
    interval_coverage,
    text_histogram,
)
from repro.analysis.timeline import render_predictions, render_timeline, timeline_lines

__all__ = [
    "occurrence_times",
    "first_occurrence",
    "gaps",
    "separations_after",
    "BoundsAccumulator",
    "PropertyReport",
    "check_P_prefix",
    "check_Q_prefix",
    "Milestone",
    "MilestoneChain",
    "rm_first_grant_chain",
    "rm_grant_gap_chain",
    "relay_chain",
    "chain_bound",
    "Table",
    "format_value",
    "render_timeline",
    "render_predictions",
    "timeline_lines",
    "exact_percentile",
    "five_number_summary",
    "interval_coverage",
    "text_histogram",
]
