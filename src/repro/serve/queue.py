"""Bounded admission queue: accept, shed, or drain — never hang.

The daemon's first timing guarantee is its own: a request either gets
queue space *now* or is shed with a 429 and a ``Retry-After`` hint, so
overload produces fast, honest rejections instead of unbounded queues
and silently growing latency.  The queue is deliberately dumb — FIFO,
bounded, thread-safe; admission *policy* (circuit breakers, draining,
deadline sanity) lives in :mod:`repro.serve.app` where it can consult
the whole service state.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Dict, Optional

__all__ = ["AdmissionQueue"]


class AdmissionQueue:
    """A bounded, closable FIFO of scheduled jobs.

    - :meth:`offer` never blocks: ``False`` means full (shed the
      request) or closed (draining);
    - :meth:`take` blocks workers up to ``timeout`` seconds and returns
      ``None`` on timeout or when the queue is closed *and* empty —
      the worker-pool shutdown signal;
    - :meth:`close` stops admission; queued items still drain.
    """

    def __init__(self, max_depth: int = 64):
        if max_depth <= 0:
            raise ValueError("max_depth must be positive")
        self.max_depth = max_depth
        self._items: deque = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self.accepted = 0
        self.shed = 0

    def offer(self, item: Any) -> bool:
        """Enqueue ``item`` if there is room; ``False`` sheds it."""
        with self._lock:
            if self._closed or len(self._items) >= self.max_depth:
                self.shed += 1
                return False
            self._items.append(item)
            self.accepted += 1
            self._not_empty.notify()
            return True

    def take(self, timeout: Optional[float] = None) -> Optional[Any]:
        """Dequeue the oldest item, waiting up to ``timeout`` seconds.

        ``None`` means either the wait timed out (poll again) or the
        queue is closed and fully drained (stop the worker).  Use
        :meth:`closed` + :meth:`depth` to tell the cases apart.
        """
        with self._not_empty:
            while not self._items:
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout):
                    return None
            return self._items.popleft()

    def close(self) -> None:
        """Stop admission and wake every waiting worker."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def depth(self) -> int:
        with self._lock:
            return len(self._items)

    def retry_after_s(self, per_item_estimate_s: float = 1.0) -> float:
        """A polite ``Retry-After`` hint for shed requests: how long the
        current backlog should take to half-drain."""
        return max(1.0, self.depth() * per_item_estimate_s / 2.0)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "depth": len(self._items),
                "max_depth": self.max_depth,
                "accepted": self.accepted,
                "shed": self.shed,
                "closed": self._closed,
            }
