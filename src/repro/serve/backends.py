"""Pluggable verdict-cache backends for the serving layer.

The campaign tooling caches verdicts in a per-key-file directory
(:class:`repro.cache.store.DirBackend`) — perfect for one process, CI
artifact persistence, and rsync.  A fleet of serving processes wants a
single shared pool with transactional writes instead; this module adds
a **sqlite** backend (WAL journal, busy-timeout retries, upserts) that
many daemons on one host can hammer concurrently, plus a tiny spec
language so deployments choose a backend with one string:

- ``dir:<root>``     — the existing directory store (default);
- ``sqlite:<path>``  — one sqlite database file shared by all writers;
- a bare path        — ``sqlite`` when it ends in ``.db``/``.sqlite``,
  ``dir`` otherwise.

Both backends speak the two-method contract :class:`VerdictCache`
expects — ``get(key) -> Optional[str]`` and ``put(key, text)`` raising
:class:`~repro.cache.store.BackendError` on storage failure — so every
consumer of the cache (``check``/``lint``/``perturb``/``run``/serve)
works unchanged over either.
"""

from __future__ import annotations

import os
import sqlite3
import threading
import time
from typing import Optional

from repro.cache.store import BackendError, DirBackend, VerdictCache
from repro.errors import ReproError

__all__ = ["BACKEND_KINDS", "SqliteBackend", "open_backend", "backend_cache"]

#: Recognised backend spec prefixes.
BACKEND_KINDS = ("dir", "sqlite")


class SqliteBackend:
    """A verdict pool in one sqlite database file.

    Safe for many processes and threads sharing the file: the database
    runs in WAL mode (readers never block the writer), every connection
    sets a busy timeout instead of failing fast on lock contention, and
    writes are single-statement upserts — the same last-writer-wins
    semantics as the directory store's atomic ``os.replace``.

    Connections are per-thread (sqlite3 objects must not cross threads),
    created lazily on first use.
    """

    kind = "sqlite"

    _SCHEMA = (
        "CREATE TABLE IF NOT EXISTS verdicts ("
        " key TEXT PRIMARY KEY,"
        " body TEXT NOT NULL)"
    )

    #: Upsert retries after sqlite's own busy timeout lapses.  WAL
    #: mostly prevents writer/writer stalls, but a checkpoint or a
    #: slow competing transaction can still surface SQLITE_BUSY after
    #: the timeout; a few short-backoff retries turn "database is
    #: locked" into a brief wait, which is what a cache write wants.
    _BUSY_RETRIES = 4
    _BUSY_BACKOFF_S = 0.05

    def __init__(self, path: str, busy_timeout_s: float = 5.0):
        self.path = path
        self.busy_timeout_s = busy_timeout_s
        self._local = threading.local()
        # Create the schema eagerly so a misconfigured path (unwritable
        # directory) fails at construction, not mid-request.
        self._connection()

    def _connection(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            return conn
        parent = os.path.dirname(os.path.abspath(self.path))
        try:
            os.makedirs(parent, exist_ok=True)
            conn = sqlite3.connect(self.path, timeout=self.busy_timeout_s)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(
                "PRAGMA busy_timeout={}".format(int(self.busy_timeout_s * 1000))
            )
            conn.execute(self._SCHEMA)
            conn.commit()
        except (OSError, sqlite3.Error) as exc:
            raise BackendError("sqlite backend {}: {}".format(self.path, exc))
        self._local.conn = conn
        return conn

    def get(self, key: str) -> Optional[str]:
        try:
            row = self._connection().execute(
                "SELECT body FROM verdicts WHERE key = ?", (key,)
            ).fetchone()
        except sqlite3.Error as exc:
            raise BackendError("sqlite get {}: {}".format(key[:12], exc))
        return None if row is None else row[0]

    @staticmethod
    def _is_busy(exc: sqlite3.Error) -> bool:
        text = str(exc).lower()
        return isinstance(exc, sqlite3.OperationalError) and (
            "locked" in text or "busy" in text
        )

    def put(self, key: str, text: str) -> None:
        conn = self._connection()
        for retry in range(self._BUSY_RETRIES + 1):
            try:
                conn.execute(
                    "INSERT INTO verdicts (key, body) VALUES (?, ?) "
                    "ON CONFLICT(key) DO UPDATE SET body = excluded.body",
                    (key, text),
                )
                conn.commit()
                return
            except sqlite3.Error as exc:
                try:
                    conn.rollback()
                except sqlite3.Error:
                    pass
                if self._is_busy(exc) and retry < self._BUSY_RETRIES:
                    time.sleep(self._BUSY_BACKOFF_S * (2 ** retry))
                    continue
                raise BackendError("sqlite put {}: {}".format(key[:12], exc))

    def count(self) -> int:
        """Entries currently in the pool (stats endpoint)."""
        try:
            (n,) = self._connection().execute(
                "SELECT COUNT(*) FROM verdicts"
            ).fetchone()
        except sqlite3.Error as exc:
            raise BackendError("sqlite count: {}".format(exc))
        return int(n)

    def close(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    def describe(self) -> str:
        return "sqlite:{}".format(self.path)


def open_backend(spec: str):
    """Resolve a backend spec string to a backend instance.

    ``dir:<root>`` / ``sqlite:<path>`` are explicit; a bare path infers
    ``sqlite`` from a ``.db``/``.sqlite`` suffix and defaults to ``dir``
    otherwise.  An unknown prefix raises :class:`ReproError` (a typo'd
    deployment flag must not silently build an empty directory cache).
    """
    if not spec:
        raise ReproError("empty cache-backend spec")
    kind, sep, rest = spec.partition(":")
    if sep and kind in BACKEND_KINDS:
        if not rest:
            raise ReproError(
                "cache-backend spec {!r} is missing a path".format(spec)
            )
        return DirBackend(rest) if kind == "dir" else SqliteBackend(rest)
    if sep and kind not in BACKEND_KINDS and len(kind) > 1:
        # A real prefix that isn't a known kind (single letters pass
        # through as Windows-style drive paths).
        raise ReproError(
            "unknown cache-backend kind {!r}; expected one of {}".format(
                kind, ", ".join(BACKEND_KINDS)
            )
        )
    if spec.endswith((".db", ".sqlite", ".sqlite3")):
        return SqliteBackend(spec)
    return DirBackend(spec)


def backend_cache(spec: str) -> VerdictCache:
    """A :class:`VerdictCache` over the backend ``spec`` names."""
    return VerdictCache(backend=open_backend(spec))
