"""The serving worker pool: crash-isolated attempts under deadlines.

Each worker thread pulls scheduled jobs off the admission queue and
drives one job at a time to a terminal result, reusing the campaign
supervisor's machinery piece by piece:

- attempts run in a **spawned subprocess** via
  :func:`repro.runner.worker.worker_main` (isolated mode, the daemon
  default) or inline via :func:`repro.runner.jobs.execute_job` (test
  and benchmark mode — no hang protection, budgets only);
- results are classified with
  :func:`repro.runner.supervisor.classify_payload` — the exact taxonomy
  campaigns use (``ok``/``crash``/``timeout``/``malformed``/``budget``/
  ``verdict``/``error``);
- transient classes retry with the campaign
  :class:`~repro.runner.supervisor.RetryPolicy` (budget cuts escalate
  the budget 4x, like ``repro run``), but **never past the request's
  deadline**;
- every terminal classification feeds the system's circuit breaker.

Deadline semantics: a request's ``deadline_ms`` is converted to a
monotonic-clock deadline at admission.  The remaining time caps both
the in-job :class:`~repro.faults.budget.Budget` *wall_time* (so checks
degrade to partial ``exhausted_budget`` verdicts) and the subprocess
watchdog (so even a hung worker cannot overrun the deadline by more
than a kill's grace).  A job that runs out of deadline — queued or
mid-attempt — settles as a partial verdict with status ``deadline``,
``exhausted_budget: true`` and ``conclusive: false``; it never hangs
and never counts against the system's breaker (the *client's* clock
ran out, not the system).
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.instrument import Recorder
from repro.runner.jobs import RESULT_SCHEMA_VERSION, Job, execute_job
from repro.runner.report import TRANSIENT_CLASSES
from repro.runner.supervisor import RetryPolicy, classify_payload, payload_detail
from repro.serve.journal import Journal
from repro.serve.queue import AdmissionQueue
from repro.serve.resilience import BreakerBoard

__all__ = ["ServeJob", "WorkerPool"]

#: Seconds granted to a killed worker to die before SIGKILL.
_KILL_GRACE_S = 0.5

#: Floor on any watchdog/budget window — a zero window would make even
#: the degradation path unreachable.
_MIN_WINDOW_S = 0.05


@dataclass
class ServeJob:
    """One accepted request, from admission to terminal result."""

    job: Job
    deadline_ms: Optional[int] = None
    max_retries: int = 1
    timeout_s: float = 30.0
    submitted_at: float = field(default_factory=time.monotonic)
    #: Monotonic instant the deadline expires (None: no deadline).
    deadline_at: Optional[float] = None
    state: str = "queued"  # queued | running | done
    result: Optional[Dict[str, Any]] = None
    attempts: int = 0
    classifications: List[str] = field(default_factory=list)
    budget_scale: int = 1
    recovered: bool = False

    def __post_init__(self):
        if self.deadline_ms is not None and self.deadline_at is None:
            self.deadline_at = self.submitted_at + self.deadline_ms / 1000.0

    def remaining_s(self) -> Optional[float]:
        if self.deadline_at is None:
            return None
        return self.deadline_at - time.monotonic()

    def envelope(self) -> Dict[str, Any]:
        """The serving parameters journaled alongside the job body."""
        return {
            "deadline_ms": self.deadline_ms,
            "max_retries": self.max_retries,
            "timeout_s": self.timeout_s,
            "recovered": self.recovered,
        }

    def to_public_dict(self) -> Dict[str, Any]:
        """The ``GET /v1/jobs/<id>`` projection."""
        body = {
            "job_id": self.job.job_id,
            "kind": self.job.kind,
            "system": self.job.system,
            "state": self.state,
            "deadline_ms": self.deadline_ms,
            "attempts": self.attempts,
            "classifications": list(self.classifications),
            "recovered": self.recovered,
        }
        if self.result is not None:
            body["result"] = {
                k: v for k, v in self.result.items() if k not in ("schema", "telemetry")
            }
        return body


def _deadline_result(job: ServeJob, where: str) -> Dict[str, Any]:
    """The partial verdict for a job whose deadline expired ``where``
    (``"queued"`` or ``"running"``) — the Budget-discipline answer:
    degrade, flag, never hang."""
    return {
        "schema": RESULT_SCHEMA_VERSION,
        "job_id": job.job.job_id,
        "status": "deadline",
        "ok": False,
        "conclusive": False,
        "exhausted_budget": True,
        "detail": "deadline_ms={} expired while {}".format(job.deadline_ms, where),
        "error": None,
    }


class WorkerPool:
    """``workers`` threads drain the admission queue to terminal results.

    ``isolation=True`` (daemon default) spawns one subprocess per
    attempt with a watchdog; ``isolation=False`` executes attempts
    inline in the worker thread — fast, but hangs are only contained by
    in-job budgets, so it is for tests and benchmarks.

    ``on_done(serve_job)`` fires after a job settles (journal written),
    letting the service layer store warm-cache entries and wake pollers.
    """

    def __init__(
        self,
        queue: AdmissionQueue,
        journal: Journal,
        breakers: BreakerBoard,
        recorder: Recorder,
        workers: int = 2,
        isolation: bool = True,
        retry: Optional[RetryPolicy] = None,
        on_done=None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.queue = queue
        self.journal = journal
        self.breakers = breakers
        self.recorder = recorder
        self.workers = workers
        self.isolation = isolation
        self.retry = retry if retry is not None else RetryPolicy()
        self.on_done = on_done
        self._threads: List[threading.Thread] = []
        self._ctx = multiprocessing.get_context("spawn")
        self._stop = threading.Event()

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._loop, name="serve-worker-{}".format(index), daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def join(self, timeout: Optional[float] = None) -> bool:
        """Wait for every worker thread to exit (queue must be closed);
        ``False`` when ``timeout`` elapsed first."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for thread in self._threads:
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            thread.join(remaining)
            if thread.is_alive():
                return False
        return True

    def stop(self) -> None:
        """Ask workers to exit after their current job (drain assist)."""
        self._stop.set()

    def _loop(self) -> None:
        while True:
            item = self.queue.take(timeout=0.1)
            if item is None:
                if self._stop.is_set() or (
                    self.queue.closed() and self.queue.depth() == 0
                ):
                    return
                continue
            self.recorder.gauge("serve.queue_depth", self.queue.depth())
            try:
                self._process(item)
            except Exception as exc:  # the pool must survive anything
                self.recorder.incr("serve.worker_errors")
                self._settle(
                    item,
                    "error",
                    {
                        "schema": RESULT_SCHEMA_VERSION,
                        "job_id": item.job.job_id,
                        "status": "error",
                        "ok": False,
                        "conclusive": True,
                        "exhausted_budget": False,
                        "detail": "serving error: {}: {}".format(
                            type(exc).__name__, exc
                        ),
                        "error": {"type": type(exc).__name__, "message": str(exc)},
                    },
                    breaker_counts=False,
                )

    # -- one job -------------------------------------------------------

    def _attempt_params(self, job: ServeJob, window_s: Optional[float]) -> Dict[str, Any]:
        params = dict(job.job.params)
        params["budget_scale"] = job.budget_scale
        params["timeout"] = job.timeout_s
        if window_s is not None:
            # The remaining deadline caps the in-job budget so the check
            # degrades to a partial verdict before the watchdog fires.
            wall = params.get("wall_time")
            budget_window = max(_MIN_WINDOW_S, window_s * 0.9)
            params["wall_time"] = (
                budget_window if wall is None else min(float(wall), budget_window)
            )
        return params

    def _run_isolated(self, body: Dict[str, Any], attempt: int, watchdog_s: float):
        """One spawned attempt; returns (payload_or_None, timed_out)."""
        queue = self._ctx.SimpleQueue()
        from repro.runner.worker import worker_main

        process = self._ctx.Process(
            target=worker_main, args=(body, attempt, queue), daemon=True
        )
        process.start()
        deadline = time.monotonic() + watchdog_s
        while process.is_alive() and time.monotonic() < deadline:
            time.sleep(0.01)
        timed_out = process.is_alive()
        if timed_out:
            process.terminate()
            process.join(_KILL_GRACE_S)
            if process.is_alive():
                process.kill()
                process.join(1.0)
        else:
            process.join()
        payload = None
        if not timed_out:
            try:
                payload = None if queue.empty() else queue.get()
            except Exception:  # torn pipe write from a dying worker
                payload = None
        if hasattr(queue, "close"):
            queue.close()
        return payload, timed_out

    def _process(self, job: ServeJob) -> None:
        job.state = "running"
        while True:
            remaining = job.remaining_s()
            if remaining is not None and remaining <= 0:
                self.recorder.incr("serve.deadline_expired")
                self._settle(
                    job,
                    "deadline",
                    _deadline_result(job, "queued" if job.attempts == 0 else "running"),
                    breaker_counts=False,
                )
                return
            watchdog = self.timeout_for(job, remaining)
            deadline_bound = remaining is not None and remaining <= watchdog
            body = job.job.to_dict()
            body["params"] = self._attempt_params(job, remaining)
            started = time.perf_counter()
            if self.isolation:
                payload, timed_out = self._run_isolated(
                    body, job.attempts, watchdog
                )
                if timed_out:
                    classification = "timeout"
                    detail = "watchdog: no result within {:.1f}s".format(watchdog)
                elif payload is None:
                    classification = "crash"
                    detail = "worker exited without a result"
                else:
                    classification = classify_payload(job.job.job_id, payload)
                    detail = payload_detail(payload)
            else:
                payload = execute_job(Job.from_dict(body))
                classification = classify_payload(job.job.job_id, payload)
                detail = payload_detail(payload)
            wall = time.perf_counter() - started
            job.attempts += 1
            job.classifications.append(classification)
            self.recorder.merge(
                {"timers": {"serve.attempt." + job.job.kind: {"total_s": wall, "calls": 1}}}
            )
            counter = {
                "crash": "serve.crashes",
                "timeout": "serve.timeouts",
                "malformed": "serve.malformed",
                "budget": "serve.budget_cuts",
            }.get(classification)
            if counter is not None:
                self.recorder.incr(counter)
            if isinstance(payload, dict) and isinstance(
                payload.get("telemetry"), dict
            ):
                self.recorder.merge(payload["telemetry"])
            if classification == "timeout" and deadline_bound:
                # The deadline, not the service watchdog, killed it: a
                # partial verdict, not an infrastructure timeout.
                self.recorder.incr("serve.deadline_expired")
                self._settle(
                    job, "deadline", _deadline_result(job, "running"),
                    breaker_counts=False,
                )
                return
            retryable = (
                classification in TRANSIENT_CLASSES
                and job.attempts <= job.max_retries
            )
            if retryable:
                backoff = self.retry.delay(job.attempts - 1)
                remaining = job.remaining_s()
                if remaining is not None and backoff + _MIN_WINDOW_S >= remaining:
                    retryable = False  # no room left to retry inside the deadline
                else:
                    if classification == "budget":
                        job.budget_scale *= 4
                        self.recorder.incr("serve.budget_escalations")
                    self.recorder.incr("serve.retries")
                    self.breakers.breaker(job.job.system).record(classification)
                    time.sleep(backoff)
                    continue
            if not retryable:
                self._settle(
                    job,
                    classification,
                    self._terminal_result(job, classification, detail, payload),
                )
                return

    def timeout_for(self, job: ServeJob, remaining: Optional[float]) -> float:
        """The attempt watchdog: the configured per-job timeout, capped
        by the request's remaining deadline (plus a floor so the kill
        path stays reachable)."""
        if remaining is None:
            return job.timeout_s
        return max(_MIN_WINDOW_S, min(job.timeout_s, remaining))

    def _terminal_result(
        self, job: ServeJob, classification: str, detail: str, payload
    ) -> Dict[str, Any]:
        if isinstance(payload, dict) and classification in (
            "ok",
            "verdict",
            "budget",
            "error",
        ):
            result = {
                k: v for k, v in payload.items() if k != "telemetry"
            }
            result["status"] = classification
            return result
        return {
            "schema": RESULT_SCHEMA_VERSION,
            "job_id": job.job.job_id,
            "status": classification,
            "ok": False,
            "conclusive": classification not in ("budget",),
            "exhausted_budget": classification == "budget",
            "detail": detail,
            "error": None,
        }

    def _settle(
        self,
        job: ServeJob,
        status: str,
        result: Dict[str, Any],
        breaker_counts: bool = True,
    ) -> None:
        result.setdefault("status", status)
        job.result = result
        if breaker_counts:
            self.breakers.breaker(job.job.system).record(status)
        self.journal.done(job.job.job_id, result)
        self.recorder.incr("serve.completed")
        if not result.get("ok"):
            self.recorder.incr("serve.failed")
        latency = time.monotonic() - job.submitted_at
        self.recorder.merge(
            {"timers": {"serve.job": {"total_s": latency, "calls": 1}}}
        )
        if self.on_done is not None:
            # Before the state flip: a poller must not observe "done"
            # and warm-miss because the cache store hasn't landed yet.
            try:
                self.on_done(job)
            except Exception:
                self.recorder.incr("serve.on_done_errors")
        job.state = "done"
