"""Per-system circuit breakers (and the serving retry policy).

A system whose workers keep crashing or hanging would otherwise eat the
pool: every request spawns a doomed subprocess, holds a worker for the
full watchdog, and starves well-behaved systems.  The breaker quarantines
such a system the same way the campaign supervisor quarantines
deterministic failures — but *temporarily*, with a half-open probe on
cool-down, because a serving daemon outlives transient infrastructure
weather.

State machine (per system):

- **closed**    — requests flow; ``failure_threshold`` *consecutive*
  infrastructure failures (``crash``/``timeout``/``malformed``
  classifications) trip it open.  Any success, verdict, or budget
  outcome resets the streak — a failing *check* is a result, not an
  infrastructure failure.
- **open**      — requests are rejected up front (503 + ``Retry-After``)
  until ``cooldown_s`` has elapsed on the monotonic clock.
- **half-open** — one probe request is admitted; success closes the
  breaker, failure re-opens it for another cool-down.

Retries reuse the campaign :class:`~repro.runner.supervisor.RetryPolicy`
(capped exponential backoff, seeded jitter) — re-exported here so the
serving layer has one import surface for its resilience knobs.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from repro.runner.supervisor import RetryPolicy

__all__ = [
    "BREAKER_FAILURE_CLASSES",
    "CircuitBreaker",
    "BreakerBoard",
    "RetryPolicy",
]

#: Attempt classifications that count as infrastructure failures for
#: the breaker.  ``verdict``/``error``/``budget`` are *results* — the
#: machinery worked, the check concluded — and must not quarantine the
#: system.
BREAKER_FAILURE_CLASSES = frozenset({"crash", "timeout", "malformed"})

CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"


class CircuitBreaker:
    """One system's breaker; thread-safe; monotonic-clock cool-downs.

    ``clock`` is injectable for tests (defaults to
    :func:`time.monotonic` — wall-clock steps must not extend or cut
    short a quarantine).
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_s <= 0:
            raise ValueError("cooldown_s must be positive")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._streak = 0
        self._opened_at: Optional[float] = None
        self.trips = 0
        self.rejections = 0

    # -- admission -----------------------------------------------------

    def allow(self) -> bool:
        """May a request for this system proceed right now?

        In the open state this flips to half-open once the cool-down
        has elapsed and admits exactly one probe; concurrent callers
        during half-open are rejected until the probe settles.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if self._clock() - self._opened_at >= self.cooldown_s:
                    self._state = HALF_OPEN
                    return True
                self.rejections += 1
                return False
            # HALF_OPEN: the probe slot is taken until it settles.
            self.rejections += 1
            return False

    def retry_after_s(self) -> float:
        """Seconds until the next admission attempt could succeed."""
        with self._lock:
            if self._state != OPEN or self._opened_at is None:
                return 0.0
            return max(0.0, self.cooldown_s - (self._clock() - self._opened_at))

    # -- outcomes ------------------------------------------------------

    def record(self, classification: str) -> None:
        """Fold one terminal attempt classification into the breaker."""
        if classification in BREAKER_FAILURE_CLASSES:
            self.record_failure()
        else:
            self.record_success()

    def record_success(self) -> None:
        with self._lock:
            self._state = CLOSED
            self._streak = 0
            self._opened_at = None

    def record_failure(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                # The probe failed: straight back to open for another
                # full cool-down.
                self._state = OPEN
                self._opened_at = self._clock()
                self.trips += 1
                return
            self._streak += 1
            if self._streak >= self.failure_threshold and self._state == CLOSED:
                self._state = OPEN
                self._opened_at = self._clock()
                self.trips += 1

    # -- inspection ----------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            if (
                self._state == OPEN
                and self._clock() - self._opened_at >= self.cooldown_s
            ):
                return HALF_OPEN  # would admit a probe on next allow()
            return self._state

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "state": self._state,
                "streak": self._streak,
                "trips": self.trips,
                "rejections": self.rejections,
                "cooldown_s": self.cooldown_s,
                "failure_threshold": self.failure_threshold,
            }


class BreakerBoard:
    """The per-system breaker registry (created lazily, one config)."""

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._lock = threading.Lock()

    def breaker(self, system: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(system)
            if breaker is None:
                breaker = CircuitBreaker(
                    failure_threshold=self.failure_threshold,
                    cooldown_s=self.cooldown_s,
                    clock=self._clock,
                )
                self._breakers[system] = breaker
            return breaker

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        with self._lock:
            systems = list(self._breakers.items())
        return {system: breaker.snapshot() for system, breaker in systems}
