"""The verification-as-a-service daemon: HTTP front end + service core.

``python -m repro serve`` turns the toolbox into a long-running JSON
API over the stdlib :class:`~http.server.ThreadingHTTPServer` — no new
dependencies, one process, many worker threads:

- ``POST /v1/jobs``      — submit a job (``kind`` x ``system`` +
  params, optional ``deadline_ms``); answers ``202`` with a job id,
  ``200`` immediately on a warm verdict-cache hit, ``400`` on a bad
  request, ``429`` + ``Retry-After`` when the bounded queue sheds load,
  ``503`` + ``Retry-After`` when the system's circuit breaker is open
  or the daemon is draining;
- ``GET /v1/jobs/<id>``  — poll state and the terminal result;
- ``GET /v1/healthz``    — liveness (200 while the process runs);
- ``GET /v1/readyz``     — readiness (503 once draining);
- ``GET /v1/stats``      — queue depth, breaker states, cache stats,
  and the full ``serve.*`` telemetry snapshot.

Every request's ``deadline_ms`` becomes a
:class:`~repro.faults.budget.Budget` wall-time cap plus a watchdog cap
(see :mod:`repro.serve.workers`), so overload degrades to partial
``exhausted_budget`` verdicts — the daemon honours the same timing
discipline it verifies.  SIGTERM starts a graceful drain (stop
accepting, finish what is queued, journal everything); ``kill -9`` is
recovered on restart by replaying the request journal.
"""

from __future__ import annotations

import json
import signal
import sys
import threading
import time
import uuid
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.obs.instrument import Recorder
from repro.runner.jobs import JOB_KINDS, Job, job_cache_parts
from repro.runner.supervisor import RetryPolicy
from repro.serve.backends import backend_cache
from repro.serve.journal import Journal, load_journal
from repro.serve.queue import AdmissionQueue
from repro.serve.resilience import BreakerBoard
from repro.serve.workers import ServeJob, WorkerPool

__all__ = [
    "ServeConfig",
    "VerificationService",
    "build_server",
    "serve_main",
    "EXIT_DRAIN_TIMEOUT",
]

#: Exit code when a graceful drain could not finish inside
#: ``drain_grace_s`` — unfinished jobs stay journaled for recovery.
EXIT_DRAIN_TIMEOUT = 4

#: Default per-kind budget/simulation parameters for submitted jobs,
#: mirroring :func:`repro.runner.jobs.default_jobs`.
_BATTERY_DEFAULTS = {
    "seeds": 2,
    "steps": 40,
    "seed": 0,
    "max_states": 200_000,
    "max_steps": 2_000_000,
    "wall_time": 60.0,
}

#: Request params a client may set, per kind; anything else is a 400
#: (admission control includes not letting clients smuggle arbitrary
#: knobs across the process boundary).
_ALLOWED_PARAMS = {
    "check": {"seeds", "steps", "seed", "max_states", "max_steps", "wall_time"},
    "perturb": {
        "seeds", "steps", "seed", "epsilon", "max_states", "max_steps", "wall_time",
    },
    "lint": {"strict", "max_states"},
    "analyze": {"strict"},
    "bench": {"iterations"},
    "fuzz": {"count", "seed", "start"},
}

#: Hard ceiling on a single submitted fuzz shard: differential fuzzing
#: costs ~1–2 s per instance, and a service request must stay within a
#: worker timeout, not monopolise the pool.
_FUZZ_COUNT_CAP = 500


@dataclass
class ServeConfig:
    """Everything the daemon needs, in one serializable bundle."""

    host: str = "127.0.0.1"
    port: int = 8421
    workers: int = 2
    queue_depth: int = 64
    timeout_s: float = 30.0
    max_retries: int = 1
    journal_path: str = "repro-serve-journal.jsonl"
    backend: str = "dir:.repro-cache"
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 30.0
    drain_grace_s: float = 30.0
    isolation: bool = True
    seed: int = 0

    def options(self) -> Dict[str, Any]:
        return {
            "workers": self.workers,
            "queue_depth": self.queue_depth,
            "timeout_s": self.timeout_s,
            "max_retries": self.max_retries,
            "backend": self.backend,
            "breaker_threshold": self.breaker_threshold,
            "breaker_cooldown_s": self.breaker_cooldown_s,
            "isolation": self.isolation,
        }


def _system_registry() -> Dict[str, List[str]]:
    """kind -> known systems, the submit-time admission whitelist."""
    from repro.analyze import analyze_names
    from repro.faults.targets import perturb_names
    from repro.lint.targets import system_names as lint_names
    from repro.obs.bench import bench_names
    from repro.runner.jobs import FUZZ_SYSTEM

    return {
        "lint": list(lint_names()),
        "analyze": list(analyze_names()),
        "check": list(perturb_names()),
        "perturb": list(perturb_names()),
        "bench": list(bench_names()),
        "fuzz": [FUZZ_SYSTEM],
    }


#: Kinds that also admit ``gen:``-namespace systems (parametric
#: generated instances).  Bench profiles and fuzz shards have their own
#: fixed registries.
_GEN_KINDS = frozenset({"lint", "analyze", "check", "perturb"})


def _admit_gen(kind: str, system: Any) -> bool:
    """Whitelist check for generated-system names: the name must parse
    (family known, parameters in range, instance feasible) and the kind
    must apply to generated instances."""
    from repro.gen import is_gen_name, parse

    if kind not in _GEN_KINDS or not isinstance(system, str):
        return False
    if not is_gen_name(system):
        return False
    try:
        parse(system)
    except ReproError as exc:
        raise RequestError(str(exc))
    return True


class RequestError(ReproError):
    """A client request the daemon refuses (maps to HTTP 400)."""


def _require_int(body: Dict[str, Any], name: str, minimum: int) -> Optional[int]:
    value = body.get(name)
    if value is None:
        return None
    if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
        raise RequestError(
            "{} must be an integer >= {}, got {!r}".format(name, minimum, value)
        )
    return value


class VerificationService:
    """The composition root: journal + queue + breakers + pool + cache."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.generation = uuid.uuid4().hex[:12]
        self.recorder = Recorder(name="serve." + self.generation, max_events=0)
        self.journal = Journal(config.journal_path)
        self.queue = AdmissionQueue(max_depth=config.queue_depth)
        self.breakers = BreakerBoard(
            failure_threshold=config.breaker_threshold,
            cooldown_s=config.breaker_cooldown_s,
        )
        self.cache = backend_cache(config.backend)
        self.registry = _system_registry()
        self.jobs: Dict[str, ServeJob] = {}
        self._jobs_lock = threading.Lock()
        self.pool = WorkerPool(
            self.queue,
            self.journal,
            self.breakers,
            self.recorder,
            workers=config.workers,
            isolation=config.isolation,
            retry=RetryPolicy(seed=config.seed),
            on_done=self._job_done,
        )
        self.draining = False
        self.recovered = 0
        self.started_at = time.monotonic()

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Recover the journal, mark a new generation, start workers."""
        self._recover()
        self.journal.start(self.generation, self.config.options())
        self.pool.start()

    def _recover(self) -> None:
        state = load_journal(self.config.journal_path)
        if state is None:
            return
        # Finished jobs stay pollable across restarts; unfinished jobs
        # are re-enqueued and run exactly like `run --resume` re-runs
        # an interrupted campaign.
        for job_id, result in state.results.items():
            entry = state.jobs.get(job_id)
            if entry is None:
                continue
            serve_job = self._rebuild(entry)
            serve_job.state = "done"
            serve_job.result = result
            with self._jobs_lock:
                self.jobs[job_id] = serve_job
        for entry in state.pending:
            serve_job = self._rebuild(entry)
            serve_job.recovered = True
            with self._jobs_lock:
                self.jobs[serve_job.job.job_id] = serve_job
            self.queue.offer(serve_job) or self._force_enqueue(serve_job)
            self.recovered += 1
            self.recorder.incr("serve.recovered")

    def _force_enqueue(self, serve_job: ServeJob) -> bool:
        # Recovery must never shed an already-accepted job, even when
        # the configured queue is smaller than the backlog.
        with self.queue._lock:
            self.queue._items.append(serve_job)
            self.queue._not_empty.notify()
        return True

    def _rebuild(self, entry: Dict[str, Any]) -> ServeJob:
        envelope = entry.get("envelope", {})
        deadline_ms = envelope.get("deadline_ms")
        return ServeJob(
            job=Job.from_dict(entry["job"]),
            # A recovered deadline restarts its window: the original
            # monotonic instant died with the old process.
            deadline_ms=deadline_ms,
            max_retries=int(envelope.get("max_retries", self.config.max_retries)),
            timeout_s=float(envelope.get("timeout_s", self.config.timeout_s)),
        )

    def drain(self, grace_s: Optional[float] = None) -> int:
        """Graceful shutdown: stop admission, finish or journal work.

        Returns the process exit code: 0 when every accepted job
        reached a terminal state, :data:`EXIT_DRAIN_TIMEOUT` when the
        grace ran out (unfinished jobs stay journaled for the next
        generation's recovery).
        """
        grace = self.config.drain_grace_s if grace_s is None else grace_s
        self.draining = True
        self.queue.close()
        drained = self.pool.join(timeout=grace)
        with self._jobs_lock:
            unfinished = [j.job.job_id for j in self.jobs.values() if j.state != "done"]
        summary = {
            "generation": self.generation,
            "drained": drained and not unfinished,
            "unfinished": unfinished,
            "jobs": len(self.jobs),
        }
        if drained and not unfinished:
            self.journal.drain(summary)
            return 0
        return EXIT_DRAIN_TIMEOUT

    # -- submission ----------------------------------------------------

    def _build_job(self, body: Dict[str, Any]) -> Tuple[Job, Dict[str, Any]]:
        kind = body.get("kind")
        if kind not in JOB_KINDS:
            raise RequestError(
                "unknown kind {!r}; expected one of {}".format(kind, ", ".join(JOB_KINDS))
            )
        system = body.get("system")
        known = self.registry[kind]
        if system not in known and not _admit_gen(kind, system):
            raise RequestError(
                "unknown system {!r} for kind {!r}; known: {}".format(
                    system, kind, ", ".join(known)
                )
            )
        raw = body.get("params") or {}
        if not isinstance(raw, dict):
            raise RequestError("params must be an object")
        unknown = set(raw) - _ALLOWED_PARAMS[kind]
        if unknown:
            raise RequestError(
                "unknown param(s) for {}: {}".format(kind, ", ".join(sorted(unknown)))
            )
        if kind in ("check", "perturb"):
            params: Dict[str, Any] = dict(_BATTERY_DEFAULTS)
            params.update(raw)
            params.setdefault("epsilon", "0")
            params["epsilon"] = str(params["epsilon"])
        elif kind == "bench":
            params = {"iterations": int(raw.get("iterations", 1))}
        elif kind == "fuzz":
            count = raw.get("count", 100)
            if not isinstance(count, int) or isinstance(count, bool) or count < 1:
                raise RequestError(
                    "count must be a positive integer, got {!r}".format(count)
                )
            if count > _FUZZ_COUNT_CAP:
                raise RequestError(
                    "count {} exceeds the per-request cap of {}".format(
                        count, _FUZZ_COUNT_CAP
                    )
                )
            params = {
                "count": count,
                "seed": int(raw.get("seed", 0)),
                "start": int(raw.get("start", 0)),
            }
        else:
            params = {"strict": bool(raw.get("strict", False))}
            if "max_states" in raw:
                params["max_states"] = int(raw["max_states"])
        # The serving layer owns caching (one backend, parent-side
        # lookups/stores); workers must not consult their own.
        params["cache"] = False
        chaos = body.get("chaos")
        if chaos is not None and chaos not in ("crash", "hang", "malformed"):
            raise RequestError("chaos must be crash/hang/malformed")
        job = Job(
            job_id="sv-" + uuid.uuid4().hex[:16],
            kind=kind,
            system=system,
            params=params,
            chaos=chaos,
        )
        envelope = {
            "deadline_ms": _require_int(body, "deadline_ms", 1),
            "max_retries": (
                _require_int(body, "max_retries", 0)
                if body.get("max_retries") is not None
                else self.config.max_retries
            ),
        }
        return job, envelope

    def submit(self, body: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        """Admit one request; returns ``(http_status, response_body)``."""
        self.recorder.incr("serve.submissions")
        if self.draining:
            return 503, {
                "error": "draining: not accepting new jobs",
                "retry_after_s": None,
            }
        try:
            job, envelope = self._build_job(body)
        except RequestError as exc:
            self.recorder.incr("serve.rejected")
            return 400, {"error": str(exc)}
        serve_job = ServeJob(
            job=job,
            deadline_ms=envelope["deadline_ms"],
            max_retries=envelope["max_retries"],
            timeout_s=self.config.timeout_s,
        )
        # Warm path: a settled verdict for identical work is served
        # straight from the shared cache — no queue, no worker, no
        # breaker (reading a verdict cannot hurt a quarantined system).
        parts = job_cache_parts(job)
        if parts is not None:
            hit = self.cache.lookup(job.kind, job.system, parts)
            if isinstance(hit, dict) and hit.get("ok") is not None:
                result = {k: v for k, v in hit.items() if k != "telemetry"}
                result["job_id"] = job.job_id
                result["cached"] = True
                result.setdefault("status", "ok" if result.get("ok") else "verdict")
                serve_job.state = "done"
                serve_job.result = result
                with self._jobs_lock:
                    self.jobs[job.job_id] = serve_job
                self.journal.job(job.to_dict(), serve_job.envelope())
                self.journal.done(job.job_id, result)
                self.recorder.incr("serve.cache_hits")
                return 200, serve_job.to_public_dict()
        breaker = self.breakers.breaker(job.system)
        if not breaker.allow():
            self.recorder.incr("serve.breaker_rejections")
            return 503, {
                "error": "circuit breaker open for system {!r}".format(job.system),
                "system": job.system,
                "breaker": breaker.snapshot(),
                "retry_after_s": round(breaker.retry_after_s(), 3),
            }
        # Journal before enqueue: an accepted job must survive kill -9
        # from the instant the client could learn its id.
        with self._jobs_lock:
            self.jobs[job.job_id] = serve_job
        self.journal.job(job.to_dict(), serve_job.envelope())
        if not self.queue.offer(serve_job):
            # Shed: roll back the acceptance so the journal replay does
            # not resurrect a job the client was told to retry.
            with self._jobs_lock:
                self.jobs.pop(job.job_id, None)
            self.journal.done(
                job.job_id,
                {
                    "job_id": job.job_id,
                    "status": "shed",
                    "ok": False,
                    "conclusive": False,
                    "exhausted_budget": False,
                    "detail": "queue full (depth {})".format(self.queue.max_depth),
                    "error": None,
                },
            )
            self.recorder.incr("serve.shed")
            return 429, {
                "error": "queue full",
                "retry_after_s": round(self.queue.retry_after_s(), 3),
            }
        self.recorder.incr("serve.accepted")
        return 202, serve_job.to_public_dict()

    def _job_done(self, serve_job: ServeJob) -> None:
        """Worker-pool callback: store settled verdicts in the shared
        cache so the next identical request is a warm hit."""
        result = serve_job.result or {}
        if (
            result.get("error") is None
            and result.get("conclusive")
            and not result.get("exhausted_budget")
            and result.get("status") in ("ok", "verdict")
        ):
            parts = job_cache_parts(serve_job.job)
            if parts is not None:
                stored = {k: v for k, v in result.items() if k != "wall"}
                self.cache.store(serve_job.job.kind, serve_job.job.system, parts, stored)

    # -- reads ---------------------------------------------------------

    def get_job(self, job_id: str) -> Optional[Dict[str, Any]]:
        with self._jobs_lock:
            serve_job = self.jobs.get(job_id)
        return None if serve_job is None else serve_job.to_public_dict()

    def stats(self) -> Dict[str, Any]:
        with self._jobs_lock:
            states: Dict[str, int] = {}
            for serve_job in self.jobs.values():
                states[serve_job.state] = states.get(serve_job.state, 0) + 1
        return {
            "generation": self.generation,
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "draining": self.draining,
            "recovered": self.recovered,
            "jobs": states,
            "queue": self.queue.stats(),
            "breakers": self.breakers.snapshot(),
            "cache": self.cache.stats(),
            "backend": self.cache.backend.describe(),
            "telemetry": self.recorder.snapshot(),
        }


# ----------------------------------------------------------------------
# HTTP layer
# ----------------------------------------------------------------------


class _Handler(BaseHTTPRequestHandler):
    """Routes the v1 API onto a :class:`VerificationService`."""

    service: VerificationService = None  # set by serve_main
    protocol_version = "HTTP/1.1"
    quiet = True

    def log_message(self, fmt, *args):  # noqa: N802 (stdlib name)
        if not self.quiet:
            sys.stderr.write("%s - %s\n" % (self.address_string(), fmt % args))

    def _respond(self, status: int, body: Dict[str, Any], retry_after=None) -> None:
        payload = json.dumps(body, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        if retry_after is not None:
            self.send_header("Retry-After", str(max(1, int(round(retry_after)))))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802
        service = self.service
        service.recorder.incr("serve.requests")
        path = self.path.rstrip("/") or "/"
        if path == "/v1/healthz":
            self._respond(200, {"ok": True, "generation": service.generation})
        elif path == "/v1/readyz":
            if service.draining:
                self._respond(503, {"ready": False, "reason": "draining"})
            else:
                self._respond(200, {"ready": True})
        elif path == "/v1/stats":
            self._respond(200, service.stats())
        elif path.startswith("/v1/jobs/"):
            body = service.get_job(path[len("/v1/jobs/"):])
            if body is None:
                self._respond(404, {"error": "unknown job"})
            else:
                self._respond(200, body)
        else:
            self._respond(404, {"error": "unknown path {!r}".format(self.path)})

    def do_POST(self) -> None:  # noqa: N802
        service = self.service
        service.recorder.incr("serve.requests")
        path = self.path.rstrip("/")
        if path != "/v1/jobs":
            self._respond(404, {"error": "unknown path {!r}".format(self.path)})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            body = json.loads(self.rfile.read(length).decode("utf-8") or "{}")
            if not isinstance(body, dict):
                raise ValueError("request body must be a JSON object")
        except (ValueError, UnicodeDecodeError) as exc:
            self._respond(400, {"error": "bad request body: {}".format(exc)})
            return
        status, payload = service.submit(body)
        self._respond(status, payload, retry_after=payload.get("retry_after_s"))


def build_server(service: VerificationService) -> ThreadingHTTPServer:
    """Bind the HTTP front end for ``service`` (port 0 = ephemeral);
    split out of :func:`serve_main` so tests can run the wire protocol
    without the signal plumbing."""
    handler = type("BoundHandler", (_Handler,), {"service": service})
    server = ThreadingHTTPServer(
        (service.config.host, service.config.port), handler
    )
    server.daemon_threads = True
    return server


def serve_main(config: ServeConfig, ready_line: bool = True) -> int:
    """Run the daemon until SIGTERM/SIGINT, then drain; returns the
    process exit code (0 clean drain, :data:`EXIT_DRAIN_TIMEOUT` when
    the grace expired with jobs still unfinished)."""
    service = VerificationService(config)
    service.start()

    server = build_server(service)
    host, port = server.server_address[:2]
    if ready_line:
        print("serving on {}:{} (journal {}, backend {})".format(
            host, port, config.journal_path, config.backend
        ))
        sys.stdout.flush()

    exit_code: List[int] = []

    def _drain(signum, frame):
        # Runs the drain off the signal handler so serve_forever's
        # own thread can be shut down cleanly.
        def _do():
            exit_code.append(service.drain())
            server.shutdown()

        threading.Thread(target=_do, daemon=True).start()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        server.server_close()
        service.journal.close()
    return exit_code[0] if exit_code else 0
