"""Verification-as-a-service: the fault-tolerant serving layer.

``repro.serve`` wraps the toolbox's verification engines (check, lint,
perturb, analyze, bench) in a long-running daemon with the robustness
properties the paper's algorithms assume of their platforms:

- **admission control** — a bounded queue that sheds overload with
  fast 429s instead of unbounded latency (:mod:`.queue`);
- **deadlines** — every request's ``deadline_ms`` becomes a budget cap
  so overload degrades to partial ``exhausted_budget`` verdicts, never
  hangs (:mod:`.workers`);
- **circuit breakers** — systems whose workers keep crashing are
  quarantined with a half-open probe on cool-down (:mod:`.resilience`);
- **crash recovery** — every accepted job is journaled before the
  client hears about it; ``kill -9`` is recovered by replay
  (:mod:`.journal`);
- **pluggable verdict-cache backends** — directory or sqlite, shared
  across daemon replicas (:mod:`.backends`).

Entry point: ``python -m repro serve`` (see :mod:`.app`).
"""

from repro.serve.app import (
    EXIT_DRAIN_TIMEOUT,
    ServeConfig,
    VerificationService,
    serve_main,
)
from repro.serve.backends import BACKEND_KINDS, SqliteBackend, backend_cache, open_backend
from repro.serve.journal import Journal, JournalState, load_journal
from repro.serve.queue import AdmissionQueue
from repro.serve.resilience import (
    BREAKER_FAILURE_CLASSES,
    BreakerBoard,
    CircuitBreaker,
    RetryPolicy,
)
from repro.serve.workers import ServeJob, WorkerPool

__all__ = [
    "EXIT_DRAIN_TIMEOUT",
    "ServeConfig",
    "VerificationService",
    "serve_main",
    "BACKEND_KINDS",
    "SqliteBackend",
    "backend_cache",
    "open_backend",
    "Journal",
    "JournalState",
    "load_journal",
    "AdmissionQueue",
    "BREAKER_FAILURE_CLASSES",
    "BreakerBoard",
    "CircuitBreaker",
    "RetryPolicy",
    "ServeJob",
    "WorkerPool",
]
