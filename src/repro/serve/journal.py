"""The durable request journal behind crash recovery.

Every accepted job is journaled *before* the submit response is sent,
and journaled again when it reaches a terminal state — so a daemon
killed with ``kill -9`` at any instant can replay the journal on
restart and finish exactly the accepted-but-unfinished jobs, the same
contract ``repro run --resume`` provides for campaigns.

The journal deliberately reuses the campaign ledger's JSONL entry
format (:func:`repro.serialize.ledger_entry_to_line` /
:func:`~repro.serialize.ledger_entries_from_jsonl`): one
schema-stamped, self-describing entry per line, flushed and fsynced as
written, torn-tail tolerant on read.  Entry kinds:

- ``serve-start``  — a daemon generation began (restart markers let an
  audit count crashes);
- ``serve-job``    — one accepted job: the full job body plus the
  request's deadline/retry envelope;
- ``serve-done``   — that job's terminal result payload;
- ``serve-drain``  — a graceful drain completed (all accepted jobs
  terminal at shutdown).

Writes take an internal lock (HTTP handler threads and worker threads
share one journal) and append whole lines, so concurrent writers — and
even multiple daemon processes sharing one file via O_APPEND — can
interleave entries but never tear each other's lines.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.serialize import ledger_entries_from_jsonl, ledger_entry_to_line

__all__ = ["Journal", "JournalState", "load_journal"]


class Journal:
    """Append-only JSONL journal of one serving daemon's requests."""

    def __init__(self, path: str):
        self.path = path
        self._fh = None
        self._lock = threading.Lock()

    def _write(self, entry: Dict[str, Any]) -> None:
        line = ledger_entry_to_line(entry)
        with self._lock:
            if self._fh is None:
                self._fh = open(self.path, "a")
            self._fh.write(line + "\n")
            self._fh.flush()
            os.fsync(self._fh.fileno())

    def start(self, generation: str, options: Dict[str, Any]) -> None:
        self._write(
            {"kind": "serve-start", "generation": generation, "options": dict(options)}
        )

    def job(self, body: Dict[str, Any], envelope: Dict[str, Any]) -> None:
        """One accepted job: ``body`` is ``Job.to_dict()`` output,
        ``envelope`` the request's serving parameters (deadline_ms,
        max_retries…) needed to resume it faithfully."""
        self._write({"kind": "serve-job", "job": dict(body), "envelope": dict(envelope)})

    def done(self, job_id: str, result: Dict[str, Any]) -> None:
        self._write({"kind": "serve-done", "job_id": job_id, "result": dict(result)})

    def drain(self, summary: Dict[str, Any]) -> None:
        self._write({"kind": "serve-drain", "summary": dict(summary)})

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class JournalState:
    """A parsed journal: everything a restart needs to recover.

    ``jobs`` maps job id to its ``serve-job`` entry (last write wins —
    a replayed job re-journaled by a later generation is the same job);
    ``results`` holds terminal results.  ``pending`` is the recovery
    work list: accepted jobs with no terminal entry, in acceptance
    order.
    """

    jobs: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    results: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    generations: List[str] = field(default_factory=list)
    drained: bool = False

    @property
    def pending(self) -> List[Dict[str, Any]]:
        return [
            entry
            for job_id, entry in self.jobs.items()
            if job_id not in self.results
        ]

    @property
    def complete(self) -> bool:
        return not self.pending


def load_journal(path: str) -> Optional[JournalState]:
    """Parse a request journal back into recoverable state.

    Returns ``None`` when the journal does not exist (a fresh daemon).
    Torn final lines (mid-write kill) are tolerated; unknown entry
    kinds are skipped so future shapes stay additive.  Unlike a
    campaign ledger, a journal spans daemon *generations*: every
    restart appends a new ``serve-start`` and keeps the file.
    """
    if not os.path.exists(path):
        return None
    with open(path) as fh:
        entries = ledger_entries_from_jsonl(fh.read())
    state = JournalState()
    for entry in entries:
        kind = entry.get("kind")
        if kind == "serve-start":
            state.generations.append(entry.get("generation", "?"))
            state.drained = False
        elif kind == "serve-job":
            job = entry.get("job", {})
            job_id = job.get("job_id")
            if job_id:
                state.jobs[job_id] = entry
        elif kind == "serve-done":
            job_id = entry.get("job_id")
            if job_id:
                state.results[job_id] = entry.get("result", {})
        elif kind == "serve-drain":
            state.drained = True
        # other kinds (future informational markers) are skipped
    return state
