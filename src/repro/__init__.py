"""repro — a reproduction of Lynch & Attiya, *Using Mappings to Prove
Timing Properties* (PODC 1990).

The library provides:

- :mod:`repro.ioa` — the I/O automaton model (signatures, composition,
  executions, exploration);
- :mod:`repro.timed` — timed automata: boundmaps, timed sequences,
  timing conditions and their satisfaction semantics;
- :mod:`repro.core` — the paper's contribution: the ``time(A, U)``
  construction with predictive timing state, strong possibilities
  mappings with machine checkers, dummification, and the completeness
  (canonical mapping) construction;
- :mod:`repro.sim` — seeded discrete-event simulation of timed systems;
- :mod:`repro.zones` — exact DBM/zone reachability for event-separation
  bounds;
- :mod:`repro.systems` — the paper's resource manager and signal relay,
  their requirements and mappings, plus the Section 8 extensions;
- :mod:`repro.analysis` — bound measurement, the properties ``P``/``Q``,
  the operational recurrence baseline, and report tables.

Quickstart::

    from fractions import Fraction as F
    import random
    from repro.systems import ResourceManagerParams, ResourceManagerSystem
    from repro.systems import resource_manager_mapping
    from repro.sim import Simulator, UniformStrategy
    from repro.core import check_mapping_on_run

    system = ResourceManagerSystem(ResourceManagerParams(k=3, c1=F(2), c2=F(3), l=F(1)))
    run = Simulator(system.algorithm, UniformStrategy(random.Random(0))).run(max_steps=500)
    check_mapping_on_run(resource_manager_mapping(system), run).raise_if_failed()
"""

from repro.errors import (
    AutomatonError,
    CompositionError,
    ExecutionError,
    MappingCheckError,
    MappingError,
    NotEnabledError,
    PartitionError,
    ReproError,
    SchedulingDeadlockError,
    SignatureError,
    TimedSequenceError,
    TimingConditionError,
    TimingViolationError,
    ZoneError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "SignatureError",
    "PartitionError",
    "AutomatonError",
    "NotEnabledError",
    "CompositionError",
    "ExecutionError",
    "TimedSequenceError",
    "TimingConditionError",
    "TimingViolationError",
    "SchedulingDeadlockError",
    "MappingError",
    "MappingCheckError",
    "ZoneError",
]
