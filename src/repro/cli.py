"""Command-line interface: ``python -m repro <command>``.

Exposes the paper's two systems for quick experimentation without
writing code:

- ``rm``       simulate the resource manager, measure Theorem 4.4's
               bounds and machine-check the Section 4.3 mapping;
- ``relay``    simulate the signal relay and machine-check the whole
               Section 6 mapping hierarchy;
- ``zones``    exact bounds for either system via zone reachability;
- ``verify``   exact verdict for a user-claimed interval;
- ``timeline`` print one run as a timeline with predictions;
- ``fischer``  exact mutual-exclusion verdict for Fischer's protocol;
- ``lint``     static pre-flight diagnostics for a shipped system's
               boundmaps, timing conditions and mapping hierarchies;
- ``check``    full nominal verification of a shipped system —
               exploration, exhaustive Definition 3.2 mapping checks and
               the proof battery, engine-selectable
               (``--engine parallel``) and verdict-cached;
- ``perturb``  fault injection: how much drift do the proofs survive?;
- ``bench``    perf-trajectory benchmark runner (``BENCH_<n>.json``);
- ``trace``    replayable JSONL telemetry trace of a checked run;
- ``run``      supervised verification campaign: crash-isolated
               workers, watchdogs, retry/backoff, checkpoint/resume.

Exit codes follow one convention (the full table is in docs/api.md):
0 — everything requested passed; 1 — at least one requested system or
job failed *unexpectedly* (deliberately-broken systems like
``fischer-tight`` count as expected findings, except under an explicit
``--epsilon`` probe whose exit code reports the raw verdict);
2 — argparse usage errors.
"""

from __future__ import annotations

import argparse
import random
import sys
from fractions import Fraction
from typing import List, Optional

from repro.analysis.bounds import BoundsAccumulator, gaps, occurrence_times, separations_after
from repro.analysis.report import Table
from repro.analysis.timeline import render_timeline
from repro.core import check_chain_on_run, check_mapping_on_run, project, undum
from repro.sim import Simulator, UniformStrategy
from repro.sim.trace import timed_behavior_of_run
from repro.systems import (
    GRANT,
    SIGNAL,
    RelayParams,
    RelaySystem,
    ResourceManagerParams,
    ResourceManagerSystem,
    relay_hierarchy,
    resource_manager,
    resource_manager_mapping,
    signal_relay,
)
from repro.timed import Interval
from repro.zones import (
    absolute_event_bounds,
    event_separation_bounds,
    verify_event_condition,
)

__all__ = ["main"]


def _fraction(text: str) -> Fraction:
    """Accept '3', '3/2' or '1.5'."""
    if "/" in text:
        numerator, denominator = text.split("/", 1)
        return Fraction(int(numerator), int(denominator))
    return Fraction(text)


def _positive_int(text: str) -> int:
    """argparse type: an integer >= 1 (nonsense exits 2)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError("expected an integer, got {!r}".format(text))
    if value < 1:
        raise argparse.ArgumentTypeError(
            "expected a positive integer, got {}".format(value)
        )
    return value


def _nonneg_int(text: str) -> int:
    """argparse type: an integer >= 0 (nonsense exits 2)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError("expected an integer, got {!r}".format(text))
    if value < 0:
        raise argparse.ArgumentTypeError(
            "expected a nonnegative integer, got {}".format(value)
        )
    return value


def _positive_fraction(text: str) -> Fraction:
    """argparse type: a fraction/decimal > 0 (nonsense exits 2)."""
    try:
        value = _fraction(text)
    except (ValueError, ZeroDivisionError):
        raise argparse.ArgumentTypeError("expected a number, got {!r}".format(text))
    if value <= 0:
        raise argparse.ArgumentTypeError(
            "expected a positive number, got {}".format(value)
        )
    return value


def _gen_aware_system(known) -> "argparse.FileType":
    """argparse type: a shipped system name, ``all``, or a parsable
    ``gen:``-namespace name (``gen:fischer-4``).  Replaces ``choices=``
    so generated names stay open-ended while nonsense still exits 2."""
    shipped = list(known)

    def validate(text: str) -> str:
        if text in shipped or text == "all":
            return text
        from repro.errors import ReproError
        from repro.gen import is_gen_name, parse

        if is_gen_name(text):
            try:
                parse(text)
            except ReproError as exc:
                raise argparse.ArgumentTypeError(str(exc))
            return text
        raise argparse.ArgumentTypeError(
            "unknown system {!r}; choose from {}, 'all', or a generated "
            "name like gen:fischer-4".format(text, ", ".join(shipped))
        )

    validate.__name__ = "system"
    return validate


def _with_gen_parts(name: str, parts: dict) -> dict:
    """Fold (family, params, GEN_VERSION) into a verdict-cache key for
    generated systems: bumping the generator must orphan their verdicts
    even when the package source is otherwise untouched."""
    from repro.gen import cache_parts, is_gen_name

    if is_gen_name(name):
        parts.update(cache_parts(name))
    return parts


def _rm_params(args) -> ResourceManagerParams:
    return ResourceManagerParams(k=args.k, c1=args.c1, c2=args.c2, l=args.l)


def _relay_params(args) -> RelayParams:
    return RelayParams(n=args.n, d1=args.d1, d2=args.d2)


def _add_rm_arguments(parser) -> None:
    parser.add_argument("--k", type=int, default=3, help="ticks per grant")
    parser.add_argument("--c1", type=_fraction, default=Fraction(2), help="tick lower bound")
    parser.add_argument("--c2", type=_fraction, default=Fraction(3), help="tick upper bound")
    parser.add_argument("--l", type=_fraction, default=Fraction(1), help="local step bound")


def _add_relay_arguments(parser) -> None:
    parser.add_argument("--n", type=int, default=3, help="line length")
    parser.add_argument("--d1", type=_fraction, default=Fraction(1), help="hop lower bound")
    parser.add_argument("--d2", type=_fraction, default=Fraction(2), help="hop upper bound")


def _add_sim_arguments(parser) -> None:
    parser.add_argument("--seed", type=int, default=0, help="base RNG seed")
    parser.add_argument(
        "--sim-runs", type=int, default=0,
        help="additionally simulate this many seeded runs",
    )
    parser.add_argument(
        "--sim-steps", type=int, default=120, help="events per simulated run"
    )


def _add_engine_arguments(parser) -> None:
    from repro.par.engine import ENGINE_KINDS

    parser.add_argument(
        "--engine", choices=list(ENGINE_KINDS), default=None,
        help="verification engine (default: serial; parallel is "
             "byte-identical, just faster on multi-core machines)",
    )
    parser.add_argument(
        "--engine-workers", type=_positive_int, default=None, metavar="N",
        help="worker processes for --engine parallel (default: cores - 1)",
    )


def _add_cache_argument(parser) -> None:
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the on-disk verdict cache (.repro-cache; also "
             "disabled by REPRO_CACHE=0)",
    )


def _cli_cache(args):
    """The verdict cache this invocation should use, or ``None``."""
    from repro.cache import default_cache

    return default_cache(enabled=False if args.no_cache else None)


def _engine_scope(args):
    """Scope the process-wide engine to this command's ``--engine``."""
    from repro.par.engine import engine_scope

    return engine_scope(
        getattr(args, "engine", None),
        workers=getattr(args, "engine_workers", None),
    )


def _print_cache_stats(cache) -> None:
    if cache is not None:
        print(cache.stats_line(), file=sys.stderr)


def cmd_rm(args) -> int:
    params = _rm_params(args)
    system = ResourceManagerSystem(params)
    mapping = resource_manager_mapping(system)
    first = BoundsAccumulator()
    gap = BoundsAccumulator()
    for seed in range(args.seed, args.seed + args.seeds):
        run = Simulator(system.algorithm, UniformStrategy(random.Random(seed))).run(
            max_steps=args.steps
        )
        check_mapping_on_run(mapping, run).raise_if_failed()
        times = occurrence_times(
            timed_behavior_of_run(system.timed.automaton, run), GRANT
        )
        if times:
            first.add(times[0])
            gap.add_all(gaps(times))
    table = Table("resource manager — Theorem 4.4", [
        "quantity", "paper", "measured", "within",
    ])
    table.add_row("first GRANT", repr(params.first_grant_interval),
                  repr(first.span()), first.all_within(params.first_grant_interval))
    table.add_row("GRANT gap", repr(params.grant_gap_interval),
                  repr(gap.span()), gap.all_within(params.grant_gap_interval))
    table.print()
    print("\nSection 4.3 mapping checked on {} runs: holds".format(args.seeds))
    return 0


def cmd_relay(args) -> int:
    params = _relay_params(args)
    system = RelaySystem(params)
    chain = relay_hierarchy(system)
    delays = BoundsAccumulator()
    for seed in range(args.seed, args.seed + args.seeds):
        run = Simulator(system.algorithm, UniformStrategy(random.Random(seed))).run(
            max_steps=args.steps
        )
        check_chain_on_run(chain, run).raise_if_failed()
        seq = undum(project(run))
        delays.add_all(separations_after(seq.events, SIGNAL(0), SIGNAL(params.n)))
    table = Table("signal relay — Theorem 6.4", [
        "quantity", "paper", "measured", "within",
    ])
    table.add_row("SIGNAL_0 → SIGNAL_n", repr(params.end_to_end_interval),
                  repr(delays.span()), delays.all_within(params.end_to_end_interval))
    table.print()
    print("\n{}-level hierarchy checked on {} runs: holds".format(len(chain), args.seeds))
    return 0


def cmd_zones(args) -> int:
    table = Table("exact bounds (zone reachability)", [
        "quantity", "paper", "exact", "tight",
    ])
    if args.system == "rm":
        params = _rm_params(args)
        timed = resource_manager(params)
        first = absolute_event_bounds(timed, GRANT)
        table.add_row("first GRANT", repr(params.first_grant_interval), repr(first),
                      first.tight(params.first_grant_interval))
        gap = event_separation_bounds(timed, GRANT, occurrence=2, reset_on=[GRANT])
        table.add_row("GRANT gap", repr(params.grant_gap_interval), repr(gap),
                      gap.tight(params.grant_gap_interval))
    else:
        params = _relay_params(args)
        bounds = event_separation_bounds(
            signal_relay(params), SIGNAL(params.n), occurrence=1, reset_on=[SIGNAL(0)]
        )
        table.add_row("SIGNAL_0 → SIGNAL_n", repr(params.end_to_end_interval),
                      repr(bounds), bounds.tight(params.end_to_end_interval))
    table.print()
    return 0


def cmd_verify(args) -> int:
    claimed = Interval(args.lo, args.hi)
    if args.system == "rm":
        params = _rm_params(args)
        report = verify_event_condition(
            resource_manager(params), GRANT, GRANT, claimed, occurrences=2
        )
        subject = "GRANT-to-GRANT gap"
    else:
        params = _relay_params(args)
        report = verify_event_condition(
            signal_relay(params), SIGNAL(0), SIGNAL(params.n), claimed
        )
        subject = "SIGNAL_0-to-SIGNAL_n delay"
    print("claim: {} in {!r}".format(subject, claimed))
    print("verdict: {}".format(report.verdict.value))
    if report.exact is not None:
        print("exact reachable separation: {!r}".format(report.exact))
    return 0 if report.verdict.holds else 1


def cmd_timeline(args) -> int:
    if args.system == "rm":
        system = ResourceManagerSystem(_rm_params(args))
        automaton = system.algorithm
    else:
        system = RelaySystem(_relay_params(args))
        automaton = system.algorithm
    run = Simulator(automaton, UniformStrategy(random.Random(args.seed))).run(
        max_steps=args.steps
    )
    print(render_timeline(run, automaton, limit=args.steps))
    return 0


def _seeded_safety_runs(automaton, predicate, seed: int, runs: int, steps: int) -> int:
    """Simulate ``runs`` seeded UniformStrategy runs and count states
    violating ``predicate`` — the reproducible-from-the-CLI complement
    to the exact zone verdict."""
    violations = 0
    for offset in range(runs):
        run = Simulator(automaton, UniformStrategy(random.Random(seed + offset))).run(
            max_steps=steps
        )
        violations += sum(1 for s in run.states if predicate(s.astate))
    return violations


def cmd_fischer(args) -> int:
    import math

    from repro.systems.extensions.fischer import (
        FischerParams,
        fischer_system,
        mutual_exclusion_violated,
    )
    from repro.zones.analysis import find_reachable_state

    e = math.inf if args.e is None else args.e
    params = FischerParams(n=args.n, a=args.a, b=args.b, e=e)
    bad = find_reachable_state(
        fischer_system(params), mutual_exclusion_violated, max_nodes=args.max_nodes
    )
    print(
        "Fischer n={} a={} b={} e={}".format(
            params.n, params.a, params.b, "inf" if e == math.inf else e
        )
    )
    violations = None
    if args.sim_runs:
        from repro.core import time_of_boundmap

        sim_params = FischerParams(
            n=args.n, a=args.a, b=args.b, e=params.e if args.e is not None else 1
        )
        violations = _seeded_safety_runs(
            time_of_boundmap(fischer_system(sim_params)),
            mutual_exclusion_violated,
            seed=args.seed,
            runs=args.sim_runs,
            steps=args.sim_steps,
        )
        print(
            "simulation: {} seeded runs (seed base {}): {} violation(s)".format(
                args.sim_runs, args.seed, violations
            )
        )
    if bad is None:
        print("verdict: SAFE (no double-critical state is timed-reachable)")
        return 0 if not violations else 1
    print("verdict: VIOLABLE — reachable state {!r}".format(bad))
    return 1


def cmd_peterson(args) -> int:
    from repro.analysis.recurrence import peterson_first_entry_chain
    from repro.systems.extensions.peterson import (
        ENTER,
        PetersonParams,
        both_critical,
        peterson_system,
    )
    from repro.zones.analysis import event_separation_bounds, find_reachable_state

    params = PetersonParams(s1=args.s1, s2=args.s2)
    bounds = event_separation_bounds(
        peterson_system(params), {ENTER(1), ENTER(2)}, occurrence=1,
        max_nodes=args.max_nodes,
    )
    operational = peterson_first_entry_chain(params.step_interval).total()
    bad = find_reachable_state(
        peterson_system(PetersonParams(s1=args.s1, s2=args.s2, e=args.s2, repeat=True)),
        both_critical,
        max_nodes=args.max_nodes,
    )
    print("Peterson 2-process, step bound [{}, {}]".format(params.s1, params.s2))
    print("mutual exclusion: {}".format("holds" if bad is None else "VIOLATED (bug!)"))
    print("first entry under contention (exact): {!r}".format(bounds))
    print("recurrence argument (3 winner steps): {!r}".format(operational))
    agree = (bounds.lo, bounds.hi) == (operational.lo, operational.hi)
    print("agreement: {}".format("yes" if agree else "no"))
    violations = 0
    if args.sim_runs:
        from repro.core import time_of_boundmap

        violations = _seeded_safety_runs(
            time_of_boundmap(peterson_system(params)),
            both_critical,
            seed=args.seed,
            runs=args.sim_runs,
            steps=args.sim_steps,
        )
        print(
            "simulation: {} seeded runs (seed base {}): {} violation(s)".format(
                args.sim_runs, args.seed, violations
            )
        )
    return 0 if (bad is None and agree and not violations) else 1


def cmd_lint(args) -> int:
    from repro.lint import build_target, lint_system, system_names
    from repro.lint.registry import ruleset_version

    names = list(system_names()) if args.system == "all" else [args.system]
    cache = _cli_cache(args)
    entries = []
    failed = False
    with _engine_scope(args):
        # The rule-set version keys the cache: adding a rule must
        # invalidate previously-clean verdicts, not serve them stale.
        version = ruleset_version()
        for name in names:
            parts = _with_gen_parts(
                name, {"max_states": args.max_states, "ruleset": version}
            )
            entry = None if cache is None else cache.lookup("lint", name, parts)
            cached = entry is not None
            if entry is None:
                report = lint_system(build_target(name), max_states=args.max_states)
                entry = {
                    "system": name,
                    "diagnostics": report.to_dicts(),
                    "summary": report.summary(),
                    "fails": {
                        "default": report.fails(strict=False),
                        "strict": report.fails(strict=True),
                    },
                    "rendered": report.render(),
                }
                if cache is not None:
                    cache.store("lint", name, parts, entry)
            entry = dict(entry)
            entry["cached"] = cached
            failed = failed or entry["fails"]["strict" if args.strict else "default"]
            entries.append(entry)
    if args.json:
        import json as _json

        print(_json.dumps(entries if args.system == "all" else entries[0], indent=2))
    else:
        for entry in entries:
            print(
                "lint {}{}:".format(
                    entry["system"], " (cached)" if entry["cached"] else ""
                )
            )
            print(entry["rendered"])
            print()
        print("verdict: {}".format("FAIL" if failed else "ok"))
    _print_cache_stats(cache)
    return 1 if failed else 0


def cmd_analyze(args) -> int:
    from repro.analyze import analyze_names, analyze_system, record_proved_mappings
    from repro.lint.registry import ruleset_version

    names = list(analyze_names()) if args.system == "all" else [args.system]
    cache = _cli_cache(args)
    entries = []
    failed = False
    with _engine_scope(args):
        version = ruleset_version()
        for name in names:
            parts = _with_gen_parts(name, {"ruleset": version})
            entry = None if cache is None else cache.lookup("analyze", name, parts)
            cached = entry is not None
            if entry is None:
                report = analyze_system(name)
                # Fully-proved mappings become cache entries that let a
                # warm `repro check` skip their exhaustive sweeps.
                record_proved_mappings(cache, report)
                entry = report.to_dict()
                entry["rendered"] = report.render()
                if cache is not None:
                    cache.store("analyze", name, parts, entry)
            entry = dict(entry)
            entry["cached"] = cached
            fail_flag = entry["fails"]["strict" if args.strict else "default"]
            # Expected-broken systems (fischer-tight) must be refuted:
            # only a verdict/expectation mismatch fails the command.
            unexpected = fail_flag == (not entry["expected_broken"])
            failed = failed or unexpected
            entries.append(entry)
    if args.json:
        import json as _json

        print(_json.dumps(entries if args.system == "all" else entries[0], indent=2))
    else:
        for entry in entries:
            print(
                "analyze {}{}:".format(
                    entry["system"], " (cached)" if entry["cached"] else ""
                )
            )
            print(entry["rendered"])
            if entry["expected_broken"]:
                print(
                    "  ({})".format(
                        "expected-broken: refuted as it should be"
                        if entry["fails"]["default"]
                        else "UNEXPECTED PASS for a deliberately broken system"
                    )
                )
            print()
        print("verdict: {}".format("FAIL" if failed else "ok"))
    _print_cache_stats(cache)
    return 1 if failed else 0


def _perturb_budget_factory(args):
    from repro.faults import Budget

    def factory() -> Budget:
        return Budget(
            max_states=args.max_states,
            max_steps=args.max_steps,
            wall_time=args.wall_time,
        )

    return factory


def cmd_perturb(args) -> int:
    from repro.faults import build_perturb_target, perturb_names

    names = list(perturb_names()) if args.system == "all" else [args.system]
    factory = _perturb_budget_factory(args)
    cache = _cli_cache(args)
    payload = []
    failed = False
    for name in names:
        target = build_perturb_target(
            name,
            direction=args.direction,
            mode=args.mode,
            seeds=args.seeds,
            steps=args.steps,
            seed=args.seed,
        )
        if args.epsilon is not None:
            parts = _with_gen_parts(name, target.cache_parts())
            parts.update(
                epsilon=str(args.epsilon),
                max_states=args.max_states,
                max_steps=args.max_steps,
                wall_time=str(args.wall_time),
            )
            entry = None if cache is None else cache.lookup("perturb", name, parts)
            cached = entry is not None
            if entry is None:
                with _engine_scope(args):
                    outcome = target.evaluate(args.epsilon, factory())
                entry = {
                    "system": name,
                    "direction": target.direction,
                    "mode": target.mode,
                    "epsilon": str(args.epsilon),
                    "ok": outcome.ok,
                    "conclusive": outcome.conclusive,
                    "steps_checked": outcome.steps_checked,
                    "exhausted_budget": outcome.exhausted_budget,
                    "detail": outcome.detail,
                }
                if cache is not None and entry["conclusive"]:
                    cache.store("perturb", name, parts, entry)
            entry = dict(entry)
            entry["cached"] = cached
            failed = failed or not entry["ok"]
            payload.append(entry)
            if not args.json:
                verdict = "ok" if entry["ok"] else "FAIL"
                if entry["exhausted_budget"]:
                    verdict += " (budget exhausted: partial)"
                if cached:
                    verdict += " (cached)"
                print(
                    "{} [{} {} eps={}]: {} {}".format(
                        name,
                        target.direction,
                        target.mode,
                        args.epsilon,
                        verdict,
                        entry["detail"],
                    ).rstrip()
                )
        else:
            with _engine_scope(args):
                report = target.search(
                    resolution=args.resolution,
                    ceiling=args.ceiling,
                    budget_factory=factory,
                )
            failed = failed or (report.broken and not target.expected_broken)
            payload.append(report.to_dict())
            if not args.json:
                print(report.render())
    _print_cache_stats(cache)
    if args.json:
        import json as _json

        print(_json.dumps(payload if args.system == "all" else payload[0], indent=2))
    # Exit nonzero when *any* probed system fails: with an explicit
    # --epsilon the exit code reports the raw verdict; in search mode a
    # BROKEN nominal system fails unless it is expected_broken
    # (fischer-tight ships deliberately broken — that finding is the
    # point, not a failure).
    return 1 if failed else 0


def cmd_bench(args) -> int:
    import json as _json
    import os

    from repro.obs import bench as _bench

    systems = args.system or None
    suite_rows = os.path.join(args.root, "benchmarks", "bench_rows.jsonl")
    cache = _cli_cache(args)
    with _engine_scope(args):
        report = _bench.run_bench(
            systems=systems,
            iterations=args.iterations,
            suite_rows_path=suite_rows,
            cache=cache,
        )
    previous_path = args.compare or _bench.latest_bench_path(args.root)
    out_path = args.out or _bench.next_bench_path(args.root)
    comparison = None
    if previous_path is not None and os.path.exists(previous_path):
        previous = _bench.load_report(previous_path)
        if systems is not None:
            # An explicit subset was benched: profiles deliberately not
            # run this time must not read as "missing" regressions —
            # compare only against the requested names.
            requested = set(systems)
            previous.records = [
                r for r in previous.records if r.system in requested
            ]
        comparison = _bench.compare_reports(previous, report)
    _bench.write_report(report, out_path)
    if args.json:
        payload = {
            "path": out_path,
            "report": report.to_dict(),
            "compared_to": previous_path,
            "comparison": None if comparison is None else comparison.to_dict(),
        }
        print(_json.dumps(payload, indent=2, sort_keys=True))
    else:
        table = Table("bench — perf trajectory", [
            "system", "wall (s)", "states", "zones", "mapping evals", "ok",
        ])
        for record in report.records:
            table.add_row(
                record.system,
                "{:.3f}".format(record.wall_time),
                record.counters.get("explore.states", 0),
                record.counters.get("zones.nodes", 0),
                record.counters.get("mapping.evals", 0),
                record.meta.get("ok", "?"),
            )
        table.print()
        print("\nwrote {}".format(out_path))
        if comparison is not None:
            print("compared against {}:".format(previous_path))
            print(comparison.render())
        else:
            print("no previous report to compare against")
    _print_cache_stats(cache)
    if args.fail_on_regress and comparison is not None and not comparison.ok:
        return 1
    return 0


def cmd_run(args) -> int:
    import json as _json

    from repro.errors import ReproError
    from repro.runner import (
        JOB_KINDS,
        Ledger,
        RetryPolicy,
        Supervisor,
        default_jobs,
        load_ledger,
    )

    kinds = [k.strip() for k in args.kinds.split(",") if k.strip()]
    unknown = [k for k in kinds if k not in JOB_KINDS]
    if unknown:
        print(
            "unknown job kind(s) {}; choose from {}".format(
                ", ".join(unknown), ", ".join(JOB_KINDS)
            ),
            file=sys.stderr,
        )
        return 2
    try:
        if args.resume:
            state = load_ledger(args.resume)
            if state.foreign_to():
                # Resuming is still fine — verdicts are host-independent
                # — but the operator should know the checkpoint they are
                # continuing was written somewhere else.
                print(
                    "warning: ledger {!r} was written on host {!r} "
                    "(pid {}); resuming on a different host".format(
                        args.resume, state.host, state.pid
                    ),
                    file=sys.stderr,
                )
            jobs = state.pending
            campaign_id = state.campaign_id
            prior = state.outcomes
            ledger_path = args.resume
            write_header = False
        else:
            jobs = default_jobs(
                systems=args.system or None,
                kinds=kinds,
                seeds=args.seeds,
                steps=args.steps,
                seed=args.seed,
                epsilon=args.epsilon,
                max_states=args.max_states,
                max_steps=args.max_steps,
                wall_time=float(args.wall_time),
                fuzz_count=args.fuzz_count,
                fuzz_shard=args.fuzz_shard,
            )
            campaign_id = None
            prior = None
            ledger_path = args.ledger
            write_header = True
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.dist:
        from repro.dist import DistConfig, DistCoordinator, parse_hosts

        if args.chaos:
            print(
                "--chaos (the local worker self-test) does not combine "
                "with --dist; use 'dist worker --chaos SPEC' for network "
                "chaos instead",
                file=sys.stderr,
            )
            return 2
        try:
            config = DistConfig(
                hosts=parse_hosts(args.dist),
                lease_ms=args.lease_ms,
                heartbeat_ms=args.heartbeat_ms,
                timeout=float(args.timeout),
                fallback_workers=max(1, args.workers),
            )
        except ReproError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        with Ledger(ledger_path) as ledger:
            coordinator = DistCoordinator(
                jobs,
                config,
                retry=RetryPolicy(max_retries=args.max_retries, seed=args.seed),
                ledger=ledger,
                campaign_id=campaign_id,
                prior_outcomes=prior,
                write_header=write_header,
                cache=_cli_cache(args),
                engine=args.engine,
                engine_workers=args.engine_workers,
                job_cache=False if args.no_cache else None,
            )
            report = coordinator.run()
    else:
        with Ledger(ledger_path) as ledger:
            supervisor = Supervisor(
                jobs,
                workers=args.workers,
                timeout=float(args.timeout),
                retry=RetryPolicy(max_retries=args.max_retries, seed=args.seed),
                ledger=ledger,
                chaos=args.chaos,
                campaign_id=campaign_id,
                prior_outcomes=prior,
                write_header=write_header,
                engine=args.engine,
                engine_workers=args.engine_workers,
                cache=False if args.no_cache else None,
            )
            report = supervisor.run()
    if args.json:
        print(_json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
        print("ledger: {}".format(ledger_path))
    return 0 if report.ok else 1


def cmd_check(args) -> int:
    import json as _json
    import time as _time

    from repro.analyze import lookup_static_mapping
    from repro.core.checker import check_mapping_exhaustive
    from repro.faults import build_perturb_target
    from repro.ioa.explorer import explore
    from repro.par.surface import explore_automaton, mapping_specs, surface_names

    names = list(surface_names()) if args.system == "all" else [args.system]
    cache = _cli_cache(args)
    factory = _perturb_budget_factory(args)
    entries = []
    failed = False
    with _engine_scope(args):
        for name in names:
            parts = _with_gen_parts(name, {
                "seeds": args.seeds,
                "steps": args.steps,
                "seed": args.seed,
                "max_states": args.max_states,
                "max_steps": args.max_steps,
                "wall_time": str(args.wall_time),
            })
            entry = None if cache is None else cache.lookup("check", name, parts)
            cached = entry is not None
            if entry is None:
                start = _time.perf_counter()
                automaton, cap = explore_automaton(name)
                result = explore(automaton, max_states=cap, budget=factory())
                mappings = []
                mappings_ok = True
                exhausted = result.exhausted_budget
                for label, mapping, grid, horizon in mapping_specs(name):
                    # A mapping the static analyzer already proved (all
                    # obligations PROVED at the current rule-set version)
                    # needs no exhaustive sweep.
                    if lookup_static_mapping(cache, name, label) is not None:
                        mappings.append(
                            {
                                "mapping": label,
                                "ok": True,
                                "static": True,
                                "steps_checked": 0,
                                "exhausted_budget": False,
                                "detail": "statically proved (repro.analyze)",
                            }
                        )
                        continue
                    outcome = check_mapping_exhaustive(
                        mapping, grid=grid, horizon=horizon, budget=factory()
                    )
                    mappings_ok = mappings_ok and outcome.ok
                    exhausted = exhausted or outcome.exhausted_budget
                    mappings.append(
                        {
                            "mapping": label,
                            "ok": outcome.ok,
                            "steps_checked": outcome.steps_checked,
                            "exhausted_budget": outcome.exhausted_budget,
                            "detail": outcome.detail,
                        }
                    )
                target = build_perturb_target(
                    name, seeds=args.seeds, steps=args.steps, seed=args.seed
                )
                battery = target.evaluate(Fraction(0), factory())
                exhausted = exhausted or battery.exhausted_budget
                entry = {
                    "system": name,
                    "states": len(result.reachable),
                    "transitions": result.transitions_explored,
                    "truncated": result.truncated,
                    "mappings": mappings,
                    "battery": {
                        "ok": battery.ok,
                        "conclusive": battery.conclusive,
                        "steps_checked": battery.steps_checked,
                        "exhausted_budget": battery.exhausted_budget,
                        "detail": battery.detail,
                    },
                    "expected_broken": target.expected_broken,
                    "ok": (not result.truncated) and mappings_ok and battery.ok,
                    "conclusive": battery.conclusive and not exhausted,
                    "wall": _time.perf_counter() - start,
                }
                if cache is not None and entry["conclusive"]:
                    cache.store("check", name, parts, entry)
            entry = dict(entry)
            entry["cached"] = cached
            # A deliberately-broken system (fischer-tight) is *expected*
            # to fail: only a mismatch between verdict and expectation
            # counts against the exit code.
            unexpected = entry["ok"] == entry["expected_broken"]
            failed = failed or unexpected
            entries.append(entry)
    if args.json:
        print(_json.dumps(entries if args.system == "all" else entries[0], indent=2))
    else:
        table = Table("check — full nominal verification", [
            "system", "states", "mappings", "battery", "cached", "verdict",
        ])
        for entry in entries:
            if entry["ok"]:
                verdict = "unexpected-pass" if entry["expected_broken"] else "ok"
            else:
                verdict = (
                    "expected-broken" if entry["expected_broken"] else "FAIL"
                )
            table.add_row(
                entry["system"],
                entry["states"],
                "{}/{}".format(
                    sum(1 for m in entry["mappings"] if m["ok"]),
                    len(entry["mappings"]),
                ),
                "ok" if entry["battery"]["ok"] else "FAIL",
                "yes" if entry["cached"] else "no",
                verdict,
            )
        table.print()
        print("\nverdict: {}".format("FAIL" if failed else "ok"))
    _print_cache_stats(cache)
    return 1 if failed else 0


def cmd_serve(args) -> int:
    from repro.serve.app import ServeConfig, serve_main

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        timeout_s=float(args.timeout),
        max_retries=args.max_retries,
        journal_path=args.journal,
        backend=args.backend,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=float(args.breaker_cooldown),
        drain_grace_s=float(args.drain_grace),
        isolation=not args.inline,
        seed=args.seed,
    )
    return serve_main(config)


def cmd_dist_worker(args) -> int:
    from repro.dist import DistWorker, parse_plan
    from repro.errors import ReproError

    plan = None
    cache = None
    try:
        if args.chaos:
            plan = parse_plan(args.chaos)
        if args.backend:
            from repro.serve.backends import backend_cache

            cache = backend_cache(args.backend)
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    worker = DistWorker(
        host=args.host,
        port=args.port,
        isolation=not args.inline,
        once=args.once,
        chaos=plan,
        cache=cache,
    )
    return worker.serve_forever()


def _resolve_gen_name(args) -> str:
    """``gen emit`` target: a full ``gen:`` name, or a family plus its
    parameter flags (``fischer --n 4``)."""
    from repro.errors import ReproError
    from repro.gen import GEN_PREFIX, family_specs, parse

    target = args.family
    if target.startswith(GEN_PREFIX):
        return parse(target).name
    specs = family_specs()
    if target not in specs:
        raise ReproError(
            "unknown family {!r}; choose from {} (or pass a full gen: name)".format(
                target, ", ".join(sorted(specs))
            )
        )
    flags = {
        "n": args.n,
        "k": args.k,
        "depth": args.depth,
        "fanout": args.fanout,
        "width": args.width,
    }
    wanted = specs[target]["params"]
    for key, value in flags.items():
        if value is not None and key not in wanted:
            raise ReproError(
                "family {!r} does not take --{} (its parameters: {})".format(
                    target, key, ", ".join("--" + p for p in wanted)
                )
            )
    values = []
    for key in wanted:
        if flags.get(key) is None:
            raise ReproError("family {!r} needs --{}".format(target, key))
        values.append(flags[key])
    name = GEN_PREFIX + target + "-" + "x".join(str(v) for v in values)
    return parse(name).name


def cmd_gen(args) -> int:
    import json as _json

    from repro.errors import ReproError
    from repro.gen import GEN_VERSION, build_bundle, family_specs, sample_names

    if args.gen_command == "list":
        specs = family_specs()
        if args.json:
            payload = {
                "gen_version": GEN_VERSION,
                "families": specs,
                "samples": sample_names(),
            }
            print(_json.dumps(payload, indent=2, sort_keys=True))
        else:
            print("generated-system families (gen_version {}):".format(GEN_VERSION))
            for family, spec in sorted(specs.items()):
                ranges = ", ".join(
                    "{} in [{}, {}]".format(key, lo, hi)
                    for key, lo, hi in spec["ranges"]
                )
                print("  gen:{:<12} {}".format(family, ranges))
            print("samples: " + ", ".join(sample_names()))
        return 0

    if args.gen_command == "emit":
        try:
            name = _resolve_gen_name(args)
            bundle = build_bundle(name)
        except ReproError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        print(_json.dumps(bundle.describe_dict(), indent=2, sort_keys=True))
        return 0

    # gen fuzz
    from repro.gen.fuzzer import _instance_rng, run_campaign, sample_recipe

    if args.emit_only:
        recipes = [
            sample_recipe(_instance_rng(args.seed, index))
            for index in range(args.start, args.start + args.count)
        ]
        print(_json.dumps(recipes, indent=2, sort_keys=True))
        return 0
    report = run_campaign(
        count=args.count,
        seed=args.seed,
        start=args.start,
        artifact_dir=args.artifacts,
    )
    if args.json:
        print(_json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.detail)
        for inst in report.disagreements:
            print(
                "DISAGREEMENT at index {}: expected {}, verdicts {}{}".format(
                    inst.index,
                    inst.expected,
                    inst.verdicts,
                    " (reproducer in {})".format(args.artifacts)
                    if args.artifacts
                    else "",
                )
            )
        print("verdict: {}".format("ok" if report.ok else "FAIL"))
    return 0 if report.ok else 1


def cmd_trace(args) -> int:
    from repro.obs.tracing import trace_system
    from repro.serialize import events_to_jsonl

    recorder, summary = trace_system(
        args.system, seed=args.seed, steps=args.steps
    )
    text = events_to_jsonl(recorder.events)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print("trace {}: {} events -> {}".format(
            args.system, summary["events"], args.out
        ))
        for key in sorted(summary):
            if key != "events":
                print("  {}: {}".format(key, summary[key]))
    else:
        sys.stdout.write(text)
    return 0 if summary.get("ok", True) else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Lynch & Attiya (PODC 1990) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    rm = sub.add_parser("rm", help="simulate + check the resource manager")
    _add_rm_arguments(rm)
    rm.add_argument("--seeds", type=int, default=10)
    rm.add_argument("--steps", type=int, default=300)
    rm.add_argument("--seed", type=int, default=0, help="base RNG seed")
    rm.set_defaults(func=cmd_rm)

    relay = sub.add_parser("relay", help="simulate + check the signal relay")
    _add_relay_arguments(relay)
    relay.add_argument("--seeds", type=int, default=10)
    relay.add_argument("--steps", type=int, default=120)
    relay.add_argument("--seed", type=int, default=0, help="base RNG seed")
    relay.set_defaults(func=cmd_relay)

    zones = sub.add_parser("zones", help="exact bounds via zone reachability")
    zones.add_argument("system", choices=["rm", "relay"])
    _add_rm_arguments(zones)
    _add_relay_arguments(zones)
    zones.set_defaults(func=cmd_zones)

    verify = sub.add_parser("verify", help="verify a claimed interval exactly")
    verify.add_argument("system", choices=["rm", "relay"])
    verify.add_argument("lo", type=_fraction, help="claimed lower bound")
    verify.add_argument("hi", type=_fraction, help="claimed upper bound")
    _add_rm_arguments(verify)
    _add_relay_arguments(verify)
    verify.set_defaults(func=cmd_verify)

    timeline = sub.add_parser("timeline", help="print one run as a timeline")
    timeline.add_argument("system", choices=["rm", "relay"])
    timeline.add_argument("--seed", type=int, default=0)
    timeline.add_argument("--steps", type=int, default=25)
    _add_rm_arguments(timeline)
    _add_relay_arguments(timeline)
    timeline.set_defaults(func=cmd_timeline)

    fischer = sub.add_parser(
        "fischer", help="exact mutual-exclusion verdict for Fischer's protocol"
    )
    fischer.add_argument("--n", type=int, default=2, help="number of processes")
    fischer.add_argument("--a", type=_fraction, default=Fraction(1), help="set delay bound")
    fischer.add_argument("--b", type=_fraction, default=Fraction(2), help="wait-before-check")
    fischer.add_argument(
        "--e", type=_fraction, default=None,
        help="critical-section bound (default: unbounded)",
    )
    fischer.add_argument("--max-nodes", type=int, default=400_000)
    _add_sim_arguments(fischer)
    fischer.set_defaults(func=cmd_fischer)

    peterson = sub.add_parser(
        "peterson", help="Peterson 2-process: mutex + exact contention bound"
    )
    peterson.add_argument("--s1", type=_fraction, default=Fraction(1), help="step lower bound")
    peterson.add_argument("--s2", type=_fraction, default=Fraction(2), help="step upper bound")
    peterson.add_argument("--max-nodes", type=int, default=400_000)
    _add_sim_arguments(peterson)
    peterson.set_defaults(func=cmd_peterson)

    from repro.lint import DEFAULT_MAX_STATES, system_names

    lint = sub.add_parser(
        "lint", help="static pre-flight diagnostics for a shipped system"
    )
    lint.add_argument(
        "system", type=_gen_aware_system(system_names()),
        help="a shipped system, 'all', or a generated name (gen:fischer-4)",
    )
    lint.add_argument(
        "--json", action="store_true", help="machine-readable diagnostics"
    )
    lint.add_argument(
        "--strict", action="store_true", help="treat warnings as failures"
    )
    lint.add_argument(
        "--max-states",
        type=int,
        default=DEFAULT_MAX_STATES,
        help="cap on bounded exploration per automaton",
    )
    _add_engine_arguments(lint)
    _add_cache_argument(lint)
    lint.set_defaults(func=cmd_lint)

    from repro.par.surface import surface_names

    analyze = sub.add_parser(
        "analyze",
        help="static analysis: symbolic obligation discharge "
             "(Fourier–Motzkin), interference rules R015–R019 and "
             "closed-form Theorem 6.4 bounds — no state exploration",
    )
    analyze.add_argument(
        "system", type=_gen_aware_system(surface_names()),
        help="a shipped system, 'all', or a generated name (gen:fischer-4)",
    )
    analyze.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )
    analyze.add_argument(
        "--strict", action="store_true", help="treat warnings as failures"
    )
    _add_engine_arguments(analyze)
    _add_cache_argument(analyze)
    analyze.set_defaults(func=cmd_analyze)

    check = sub.add_parser(
        "check",
        help="full nominal verification of a shipped system "
             "(exploration + exhaustive mapping checks + proof battery)",
    )
    check.add_argument(
        "system", type=_gen_aware_system(surface_names()),
        help="a shipped system, 'all', or a generated name (gen:fischer-4)",
    )
    check.add_argument("--seeds", type=int, default=3, help="uniform-strategy seeds")
    check.add_argument("--seed", type=int, default=0, help="base RNG seed")
    check.add_argument("--steps", type=int, default=80, help="events per run")
    check.add_argument(
        "--max-states", type=int, default=200_000,
        help="budget: states/nodes per phase",
    )
    check.add_argument(
        "--max-steps", type=int, default=2_000_000,
        help="budget: steps per phase",
    )
    check.add_argument(
        "--wall-time", type=_fraction, default=Fraction(60),
        help="budget: seconds of wall time per phase",
    )
    check.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )
    _add_engine_arguments(check)
    _add_cache_argument(check)
    check.set_defaults(func=cmd_check)

    from repro.faults.perturb import DIRECTIONS, MODES
    from repro.faults.targets import perturb_names

    perturb = sub.add_parser(
        "perturb",
        help="fault-injection: how much clock drift do the proofs survive?",
    )
    perturb.add_argument(
        "system", type=_gen_aware_system(perturb_names()),
        help="a shipped system, 'all', or a generated name (gen:fischer-4)",
    )
    group = perturb.add_mutually_exclusive_group()
    group.add_argument(
        "--epsilon",
        type=_fraction,
        default=None,
        help="evaluate all checks at one exact drift ε (exit 1 on failure)",
    )
    group.add_argument(
        "--search",
        action="store_true",
        help="binary-search the largest passing ε (the default)",
    )
    perturb.add_argument(
        "--direction",
        choices=list(DIRECTIONS),
        default=None,
        help="override the system's canonical stress direction",
    )
    perturb.add_argument(
        "--mode",
        choices=list(MODES),
        default=None,
        help="rate drift (scale) or offset jitter (shift)",
    )
    perturb.add_argument(
        "--ceiling", type=_fraction, default=None, help="search cap on ε"
    )
    perturb.add_argument(
        "--resolution",
        type=_fraction,
        default=Fraction(1, 64),
        help="bracket width at which the search stops",
    )
    perturb.add_argument("--seeds", type=int, default=3, help="uniform-strategy seeds")
    perturb.add_argument("--seed", type=int, default=0, help="base RNG seed")
    perturb.add_argument("--steps", type=int, default=80, help="events per run")
    perturb.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )
    perturb.add_argument(
        "--max-states", type=int, default=200_000,
        help="budget: states/nodes per probe",
    )
    perturb.add_argument(
        "--max-steps", type=int, default=2_000_000,
        help="budget: steps per probe",
    )
    perturb.add_argument(
        "--wall-time", type=_fraction, default=Fraction(60),
        help="budget: seconds of wall time per probe",
    )
    _add_engine_arguments(perturb)
    _add_cache_argument(perturb)
    perturb.set_defaults(func=cmd_perturb)

    from repro.obs.bench import DEFAULT_ITERATIONS, bench_names
    from repro.obs.tracing import trace_names

    bench = sub.add_parser(
        "bench", help="perf-trajectory benchmark runner (BENCH_<n>.json)"
    )
    bench.add_argument(
        "system", nargs="*", metavar="SYSTEM",
        help="systems to profile (default: all of {})".format(
            ", ".join(bench_names())
        ),
    )
    bench.add_argument(
        "--iterations", type=_positive_int, default=DEFAULT_ITERATIONS,
        help="seeded simulation iterations per profile",
    )
    bench.add_argument(
        "--out", default=None,
        help="output path (default: next free BENCH_<n>.json under --root)",
    )
    bench.add_argument(
        "--root", default=".", help="directory holding BENCH_<n>.json files"
    )
    bench.add_argument(
        "--compare", default=None, metavar="PREV",
        help="compare against this report (default: latest BENCH_<n>.json)",
    )
    bench.add_argument(
        "--fail-on-regress", action="store_true",
        help="exit 1 when the comparison finds a regression",
    )
    bench.add_argument(
        "--json", action="store_true", help="machine-readable report + comparison"
    )
    _add_engine_arguments(bench)
    _add_cache_argument(bench)
    bench.set_defaults(func=cmd_bench)

    from repro.runner import JOB_KINDS

    run = sub.add_parser(
        "run",
        help="supervised verification campaign with checkpoint/resume",
    )
    run.add_argument(
        "system", nargs="*", metavar="SYSTEM",
        help="systems to campaign over (default: all; 'all' accepted)",
    )
    run.add_argument(
        "--kinds", default=",".join(JOB_KINDS),
        help="comma-separated job kinds (default: {})".format(",".join(JOB_KINDS)),
    )
    run.add_argument(
        "--workers", type=_nonneg_int, default=2,
        help="concurrent isolated worker processes (0 = inline, no isolation)",
    )
    run.add_argument(
        "--timeout", type=_positive_fraction, default=Fraction(30),
        help="per-job watchdog seconds before the worker is killed",
    )
    run.add_argument(
        "--max-retries", type=_nonneg_int, default=2,
        help="retries per job for transient failures (crash/timeout/malformed/budget)",
    )
    run.add_argument(
        "--ledger", default="repro-ledger.jsonl", metavar="FILE.jsonl",
        help="checkpoint ledger path (appended as jobs settle)",
    )
    run.add_argument(
        "--resume", default=None, metavar="LEDGER",
        help="resume an interrupted campaign from its ledger (re-runs only unfinished jobs)",
    )
    run.add_argument(
        "--chaos", action="store_true",
        help="self-test: inject a worker crash, hang, and malformed result",
    )
    run.add_argument(
        "--dist", default=None, metavar="HOST:PORT,...",
        help="distribute the campaign over these 'repro dist worker' "
             "daemons (comma-separated); falls back to the local pool "
             "when none are reachable",
    )
    run.add_argument(
        "--lease-ms", type=_positive_int, default=5000,
        help="dist: job lease duration; a lease not renewed by a "
             "heartbeat within this window is reclaimed and reassigned",
    )
    run.add_argument(
        "--heartbeat-ms", type=_positive_int, default=1000,
        help="dist: worker heartbeat interval (must be < --lease-ms)",
    )
    run.add_argument(
        "--epsilon", type=_fraction, default=Fraction(1, 32),
        help="drift probed by 'perturb' jobs",
    )
    run.add_argument("--seeds", type=int, default=2, help="simulation seeds per check job")
    run.add_argument("--steps", type=int, default=40, help="events per simulated run")
    run.add_argument("--seed", type=int, default=0, help="base RNG seed (also jitters backoff)")
    run.add_argument(
        "--max-states", type=int, default=200_000, help="budget: states/nodes per job"
    )
    run.add_argument(
        "--max-steps", type=int, default=2_000_000, help="budget: steps per job"
    )
    run.add_argument(
        "--wall-time", type=_fraction, default=Fraction(60),
        help="budget: in-job seconds before graceful degradation",
    )
    run.add_argument(
        "--fuzz-count", type=_positive_int, default=100,
        help="instances per 'fuzz'-kind campaign",
    )
    run.add_argument(
        "--fuzz-shard", type=_positive_int, default=50,
        help="instances per fuzz shard job (shards resume independently)",
    )
    run.add_argument("--json", action="store_true", help="machine-readable report")
    _add_engine_arguments(run)
    _add_cache_argument(run)
    run.set_defaults(func=cmd_run)

    gen = sub.add_parser(
        "gen",
        help="parametric generated systems (gen:<family>-<params>) and "
             "the differential proof-method fuzzer",
    )
    gen_sub = gen.add_subparsers(dest="gen_command", required=True)
    gen_list = gen_sub.add_parser(
        "list", help="families, parameter ranges and sample names"
    )
    gen_list.add_argument("--json", action="store_true", help="machine-readable roster")
    gen_list.set_defaults(func=cmd_gen)
    gen_emit = gen_sub.add_parser(
        "emit",
        help="emit one generated system's bundle (automaton, bounds, "
             "obligations) as deterministic JSON",
    )
    gen_emit.add_argument(
        "family",
        help="a family name with parameter flags (fischer --n 4) or a "
             "full generated name (gen:fischer-4)",
    )
    gen_emit.add_argument(
        "--n", type=_positive_int, default=None, help="fischer: process count"
    )
    gen_emit.add_argument(
        "--k", type=_positive_int, default=None,
        help="relay_line / relay_ring: stage or station count",
    )
    gen_emit.add_argument(
        "--depth", type=_positive_int, default=None, help="relay_tree: depth"
    )
    gen_emit.add_argument(
        "--fanout", type=_positive_int, default=None, help="relay_tree: fanout"
    )
    gen_emit.add_argument(
        "--width", type=_positive_int, default=None, help="tournament: bracket width"
    )
    gen_emit.set_defaults(func=cmd_gen)
    gen_fuzz = gen_sub.add_parser(
        "fuzz",
        help="differential fuzz campaign: random well-formed instances "
             "through four independent proof methods; any split fails",
    )
    gen_fuzz.add_argument(
        "--count", type=_positive_int, default=100, help="instances to fuzz"
    )
    gen_fuzz.add_argument("--seed", type=int, default=0, help="campaign seed")
    gen_fuzz.add_argument(
        "--start", type=_nonneg_int, default=0,
        help="first instance index (for manual sharding)",
    )
    gen_fuzz.add_argument(
        "--artifacts", default=None, metavar="DIR",
        help="write a JSON reproducer per disagreement here",
    )
    gen_fuzz.add_argument(
        "--emit-only", action="store_true",
        help="print the sampled instance recipes without running the oracle",
    )
    gen_fuzz.add_argument("--json", action="store_true", help="machine-readable report")
    gen_fuzz.set_defaults(func=cmd_gen)

    dist = sub.add_parser(
        "dist",
        help="multi-host campaign distribution (leases, heartbeats, "
             "partition-safe merge; see docs/distribution.md)",
    )
    dist_sub = dist.add_subparsers(dest="dist_command", required=True)
    dist_worker = dist_sub.add_parser(
        "worker",
        help="campaign worker daemon: serves 'repro run --dist' "
             "coordinators jobs-at-a-time over TCP",
    )
    dist_worker.add_argument("--host", default="127.0.0.1", help="bind address")
    dist_worker.add_argument(
        "--port", type=_nonneg_int, default=0,
        help="TCP port (0 = ephemeral; the bound port is printed on start)",
    )
    dist_worker.add_argument(
        "--inline", action="store_true",
        help="execute attempts in-process (no subprocess isolation or "
             "hang protection; tests and benchmarks)",
    )
    dist_worker.add_argument(
        "--once", action="store_true",
        help="exit after the first cleanly completed coordinator session",
    )
    dist_worker.add_argument(
        "--chaos", default=None, metavar="SPEC",
        help="deterministic network fault plan for outbound frames, "
             "e.g. 'sever@result:2,dup@result:1' (see docs/distribution.md)",
    )
    dist_worker.add_argument(
        "--backend", default=None, metavar="SPEC",
        help="verdict-cache backend for warm-start sync (dir:<root> or "
             "sqlite:<path>; default: no worker-side pool)",
    )
    dist_worker.set_defaults(func=cmd_dist_worker)

    serve = sub.add_parser(
        "serve",
        help="verification-as-a-service HTTP daemon (journaled, "
             "deadline-aware, circuit-broken; see docs/serving.md)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=_nonneg_int, default=8421,
        help="TCP port (0 = ephemeral; the bound port is printed on start)",
    )
    serve.add_argument(
        "--workers", type=_positive_int, default=2,
        help="worker threads executing jobs",
    )
    serve.add_argument(
        "--queue-depth", type=_positive_int, default=64,
        help="bounded admission queue depth (overflow answers 429)",
    )
    serve.add_argument(
        "--timeout", type=_positive_fraction, default=Fraction(30),
        help="per-attempt watchdog seconds before the worker is killed",
    )
    serve.add_argument(
        "--max-retries", type=_nonneg_int, default=1,
        help="default retries per job for transient failures",
    )
    serve.add_argument(
        "--journal", default="repro-serve-journal.jsonl", metavar="FILE.jsonl",
        help="durable request journal (replayed on restart after a crash)",
    )
    serve.add_argument(
        "--backend", default="dir:.repro-cache", metavar="SPEC",
        help="verdict-cache backend: dir:<root> or sqlite:<file.db>",
    )
    serve.add_argument(
        "--breaker-threshold", type=_positive_int, default=3,
        help="consecutive infrastructure failures before a system's "
             "circuit breaker opens",
    )
    serve.add_argument(
        "--breaker-cooldown", type=_positive_fraction, default=Fraction(30),
        help="seconds an open breaker waits before a half-open probe",
    )
    serve.add_argument(
        "--drain-grace", type=_positive_fraction, default=Fraction(30),
        help="seconds a SIGTERM drain waits for in-flight jobs "
             "(exit 4 when exceeded; unfinished jobs stay journaled)",
    )
    serve.add_argument(
        "--inline", action="store_true",
        help="run jobs in worker threads instead of isolated "
             "subprocesses (faster, but no crash/hang isolation)",
    )
    serve.add_argument(
        "--seed", type=int, default=0, help="retry-backoff jitter seed"
    )
    serve.set_defaults(func=cmd_serve)

    trace = sub.add_parser(
        "trace", help="replayable JSONL telemetry trace of a checked run"
    )
    trace.add_argument("system", choices=list(trace_names()))
    trace.add_argument("--seed", type=int, default=0, help="RNG seed")
    trace.add_argument("--steps", type=int, default=80, help="events per run")
    trace.add_argument(
        "--out", default=None, metavar="FILE.jsonl",
        help="write the trace here (default: stdout)",
    )
    trace.set_defaults(func=cmd_trace)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
