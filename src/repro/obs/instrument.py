"""Zero-dependency telemetry core: counters, timers, gauges, traces.

A :class:`Recorder` accumulates four kinds of signal:

- **counters** — monotone totals (states explored, zone nodes built,
  mapping inequalities evaluated);
- **gauges** — last/min/max of a sampled quantity (frontier size,
  per-condition deadline slack);
- **timers** — total seconds and call counts of labelled spans
  (zone queries);
- **trace events** — an ordered, timestamped list of structured
  :class:`TraceEvent` records (one per simulator step, one per check
  verdict, one per scheduling deadlock), exportable as JSONL via
  :func:`repro.serialize.events_to_jsonl`.

Telemetry is *opt-in and process-wide*: engines consult the module
variable ``_ACTIVE`` (``None`` unless a recorder is installed) and do
nothing when it is unset, so the instrumented hot paths cost a single
global load + ``is None`` test per unit of work.  Hot paths read
``_ACTIVE`` directly instead of calling :func:`active`; everything else
should go through the public helpers.

Use :func:`recording` to scope a recorder::

    from repro.obs import Recorder, recording

    with recording() as rec:
        run = Simulator(automaton, strategy).run(max_steps=100)
    print(rec.counters["sim.steps"])

This module deliberately imports nothing from the rest of the library,
so every engine can import it without cycles.
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Dict, Iterator, List, Optional, Union

__all__ = [
    "TraceEvent",
    "GaugeStat",
    "TimerStat",
    "Recorder",
    "active",
    "recording",
    "install",
    "uninstall",
    "incr",
    "gauge",
    "emit",
    "span",
    "jsonable",
]

#: Default cap on retained trace events (overflow increments
#: ``Recorder.dropped_events`` instead of growing without bound).
DEFAULT_MAX_EVENTS = 100_000


@dataclass(frozen=True)
class TraceEvent:
    """One structured telemetry event.

    ``seq`` orders events within a recorder; ``wall`` is seconds since
    the recorder started.  ``fields`` must hold only values the
    :mod:`repro.serialize` tagged encoding supports (exact numbers,
    strings, actions, tuples…) — emitters stringify anything else.
    """

    seq: int
    name: str
    wall: float
    fields: Dict[str, Any] = field(default_factory=dict)


@dataclass
class GaugeStat:
    """Last/min/max summary of a sampled quantity."""

    last: Any
    lo: Any
    hi: Any
    updates: int = 1

    def update(self, value) -> None:
        self.last = value
        if value < self.lo:
            self.lo = value
        if value > self.hi:
            self.hi = value
        self.updates += 1


@dataclass
class TimerStat:
    """Accumulated seconds and call count of a labelled span."""

    total: float = 0.0
    calls: int = 0


def jsonable(value) -> Any:
    """Lossy-but-readable JSON projection of a telemetry value: exact
    fractions render as ``"p/q"``, infinities as ``"inf"``, unknown
    types via ``repr``.  (Exact round-trips go through
    :mod:`repro.serialize` instead.)"""
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, Fraction):
        if value.denominator == 1:
            return int(value)
        return "{}/{}".format(value.numerator, value.denominator)
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        return value
    if isinstance(value, (tuple, list)):
        return [jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    return repr(value)


def _gauge_value(value) -> Any:
    """Undo :func:`jsonable`'s numeric projections well enough to keep
    merged gauges comparable: ``"p/q"`` strings become fractions,
    ``"inf"``/``"-inf"`` become floats, everything else passes through."""
    if isinstance(value, str):
        if value == "inf":
            return math.inf
        if value == "-inf":
            return -math.inf
        try:
            return Fraction(value)
        except (ValueError, ZeroDivisionError):
            return value
    return value


class Recorder:
    """Accumulates counters, gauges, timers and trace events.

    Mutation is thread-safe: every update takes an internal
    :class:`threading.RLock`, so one recorder may be shared by a
    supervisor thread and its watchdogs (see :mod:`repro.runner`).
    Cross-*process* aggregation goes through :meth:`snapshot` on the
    worker side and :meth:`merge` on the parent side instead — the
    lock makes a recorder unpicklable by design.
    """

    def __init__(self, name: str = "recorder", max_events: int = DEFAULT_MAX_EVENTS):
        if max_events < 0:
            raise ValueError("max_events must be >= 0")
        self.name = name
        self.max_events = max_events
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, GaugeStat] = {}
        self.timers: Dict[str, TimerStat] = {}
        self.events: List[TraceEvent] = []
        self.dropped_events = 0
        self._seq = 0
        self._t0 = time.perf_counter()
        self._lock = threading.RLock()

    # -- recording ----------------------------------------------------

    def incr(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (created at 0)."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value) -> None:
        """Sample gauge ``name``; last/min/max are tracked."""
        with self._lock:
            stat = self.gauges.get(name)
            if stat is None:
                self.gauges[name] = GaugeStat(last=value, lo=value, hi=value)
            else:
                stat.update(value)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time a ``with`` block under timer ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            with self._lock:
                stat = self.timers.setdefault(name, TimerStat())
                stat.total += elapsed
                stat.calls += 1

    def event(self, name: str, **fields) -> Optional[TraceEvent]:
        """Append a :class:`TraceEvent` (None when the cap dropped it).

        Every emission counts under the ``events.<name>`` counter even
        when the retention cap is hit, so aggregate telemetry stays
        exact while memory stays bounded.
        """
        with self._lock:
            self.counters["events." + name] = (
                self.counters.get("events." + name, 0) + 1
            )
            if len(self.events) >= self.max_events:
                self.dropped_events += 1
                return None
            ev = TraceEvent(
                seq=self._seq,
                name=name,
                wall=time.perf_counter() - self._t0,
                fields=dict(fields),
            )
            self._seq += 1
            self.events.append(ev)
            return ev

    # -- aggregation --------------------------------------------------

    def merge(self, other: Union["Recorder", Dict[str, Any]]) -> "Recorder":
        """Fold another recorder — or a :meth:`snapshot` dict from a
        worker process — into this one.

        Counters and timers add; gauges fold last/min/max (``last``
        takes the merged-in sample, updates add); dropped-event counts
        add.  Trace events do **not** cross: snapshots deliberately
        exclude them (export via :mod:`repro.serialize` instead), so a
        merged-in recorder contributes only its aggregates.  Returns
        ``self`` for chaining.
        """
        if isinstance(other, Recorder):
            other = other.snapshot()
        counters = other.get("counters", {})
        gauges = other.get("gauges", {})
        timers = other.get("timers", {})
        with self._lock:
            for name, value in counters.items():
                self.counters[name] = self.counters.get(name, 0) + int(value)
            for name, body in gauges.items():
                last = _gauge_value(body.get("last"))
                lo = _gauge_value(body.get("min"))
                hi = _gauge_value(body.get("max"))
                updates = int(body.get("updates", 1))
                stat = self.gauges.get(name)
                if stat is None:
                    self.gauges[name] = GaugeStat(
                        last=last, lo=lo, hi=hi, updates=updates
                    )
                    continue
                stat.last = last
                try:
                    if lo < stat.lo:
                        stat.lo = lo
                    if hi > stat.hi:
                        stat.hi = hi
                except TypeError:
                    pass  # incomparable jsonable projections: keep ours
                stat.updates += updates
            for name, body in timers.items():
                stat = self.timers.setdefault(name, TimerStat())
                stat.total += float(body.get("total_s", 0.0))
                stat.calls += int(body.get("calls", 0))
            self.dropped_events += int(other.get("events_dropped", 0))
        return self

    # -- inspection ---------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A plain JSON-able summary (events themselves excluded; use
        :mod:`repro.serialize` to export those)."""
        with self._lock:
            return {
                "name": self.name,
                "counters": {k: self.counters[k] for k in sorted(self.counters)},
                "gauges": {
                    k: {
                        "last": jsonable(g.last),
                        "min": jsonable(g.lo),
                        "max": jsonable(g.hi),
                        "updates": g.updates,
                    }
                    for k, g in sorted(self.gauges.items())
                },
                "timers": {
                    k: {"total_s": t.total, "calls": t.calls}
                    for k, t in sorted(self.timers.items())
                },
                "events_recorded": len(self.events),
                "events_dropped": self.dropped_events,
            }

    def clear(self) -> None:
        """Reset all accumulated telemetry (the clock restarts too)."""
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.timers.clear()
            self.events = []
            self.dropped_events = 0
            self._seq = 0
            self._t0 = time.perf_counter()

    def __repr__(self) -> str:
        return "<Recorder {} counters={} events={}>".format(
            self.name, len(self.counters), len(self.events)
        )


#: The process-wide active recorder; ``None`` means telemetry is off.
#: Hot paths read this directly (one global load per unit of work).
_ACTIVE: Optional[Recorder] = None


def active() -> Optional[Recorder]:
    """The currently installed recorder, or ``None``."""
    return _ACTIVE


def install(recorder: Recorder) -> Recorder:
    """Install ``recorder`` as the process-wide active recorder."""
    global _ACTIVE
    _ACTIVE = recorder
    return recorder


def uninstall() -> None:
    """Disable telemetry (the previous recorder keeps its data)."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def recording(
    recorder: Optional[Recorder] = None,
    name: str = "recorder",
    max_events: int = DEFAULT_MAX_EVENTS,
) -> Iterator[Recorder]:
    """Scope a recorder: install for the ``with`` block, then restore
    whatever was active before (recorders nest)."""
    global _ACTIVE
    rec = recorder if recorder is not None else Recorder(name=name, max_events=max_events)
    previous = _ACTIVE
    _ACTIVE = rec
    try:
        yield rec
    finally:
        _ACTIVE = previous


# -- module-level conveniences (no-ops while telemetry is off) --------


def incr(name: str, n: int = 1) -> None:
    rec = _ACTIVE
    if rec is not None:
        rec.incr(name, n)


def gauge(name: str, value) -> None:
    rec = _ACTIVE
    if rec is not None:
        rec.gauge(name, value)


def emit(name: str, **fields) -> None:
    rec = _ACTIVE
    if rec is not None:
        rec.event(name, **fields)


@contextmanager
def span(name: str) -> Iterator[Optional[Recorder]]:
    """Time a block under the active recorder (no-op when off)."""
    rec = _ACTIVE
    if rec is None:
        yield None
    else:
        with rec.timer(name):
            yield rec
