"""Replayable event traces of checked runs (``python -m repro trace``).

A trace is the :class:`~repro.obs.instrument.TraceEvent` stream a
:class:`~repro.obs.instrument.Recorder` collects while one system is
simulated and checked: a ``trace.begin`` header, one ``sim.step`` event
per scheduled ``(action, time)`` pair (enough to re-execute the run
through the automaton), ``check.outcome`` / ``sim.deadlock`` terminal
events from the engines, and a ``trace.end`` summary.  Traces serialise
to versioned JSONL via :func:`repro.serialize.events_to_jsonl` and
round-trip exactly.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import Any, Dict, Tuple

from repro.errors import ReproError, SchedulingDeadlockError
from repro.obs.instrument import Recorder, recording

__all__ = ["trace_names", "trace_system"]


def _trace_rm(rec: Recorder, seed: int, steps: int) -> Dict[str, Any]:
    from repro.core import check_mapping_on_run
    from repro.sim import Simulator, UniformStrategy
    from repro.systems import (
        ResourceManagerParams,
        ResourceManagerSystem,
        resource_manager_mapping,
    )

    system = ResourceManagerSystem(
        ResourceManagerParams(k=3, c1=Fraction(2), c2=Fraction(3), l=Fraction(1))
    )
    run = Simulator(system.algorithm, UniformStrategy(random.Random(seed))).run(
        max_steps=steps
    )
    outcome = check_mapping_on_run(resource_manager_mapping(system), run)
    return {"ok": outcome.ok, "steps": len(run.events), "check": "Section 4.3 mapping"}


def _trace_relay(rec: Recorder, seed: int, steps: int) -> Dict[str, Any]:
    from repro.core import check_chain_on_run
    from repro.sim import Simulator, UniformStrategy
    from repro.systems import RelayParams, RelaySystem, relay_hierarchy

    system = RelaySystem(RelayParams(n=3, d1=Fraction(1), d2=Fraction(2)))
    run = Simulator(system.algorithm, UniformStrategy(random.Random(seed))).run(
        max_steps=steps
    )
    outcome = check_chain_on_run(relay_hierarchy(system), run)
    return {"ok": outcome.ok, "steps": len(run.events), "check": "Section 6 hierarchy"}


def _trace_chain(rec: Recorder, seed: int, steps: int) -> Dict[str, Any]:
    from repro.core import check_chain_on_run
    from repro.sim import Simulator, UniformStrategy
    from repro.systems.extensions import ChainSystem
    from repro.timed.interval import Interval

    system = ChainSystem([Interval(1, 2), Interval(2, 3)])
    run = Simulator(system.algorithm, UniformStrategy(random.Random(seed))).run(
        max_steps=steps
    )
    outcome = check_chain_on_run(system.hierarchy(), run)
    return {"ok": outcome.ok, "steps": len(run.events), "check": "Section 8 hierarchy"}


def _safety_tracer(build, predicate_name: str):
    def tracer(rec: Recorder, seed: int, steps: int) -> Dict[str, Any]:
        from repro.core import time_of_boundmap
        from repro.sim import Simulator, UniformStrategy
        from repro.zones.analysis import search_reachable_state

        timed, sim_timed, predicate = build()
        search = search_reachable_state(timed, predicate, max_nodes=400_000)
        rec.event(
            "safety.verdict",
            predicate=predicate_name,
            safe=search.state is None,
            nodes=search.nodes,
            conclusive=search.conclusive,
            state=None if search.state is None else repr(search.state),
        )
        sim_steps = 0
        sim_violations = 0
        if sim_timed is not None:
            try:
                run = Simulator(
                    time_of_boundmap(sim_timed), UniformStrategy(random.Random(seed))
                ).run(max_steps=steps)
            except SchedulingDeadlockError:
                # The sim.deadlock terminal event is already in the trace.
                run = None
            if run is not None:
                sim_steps = len(run.events)
                sim_violations = sum(
                    1 for s in run.states if predicate(s.astate)
                )
        return {
            "ok": search.state is None and sim_violations == 0,
            "safe": search.state is None,
            "steps": sim_steps,
            "check": predicate_name,
        }

    return tracer


def _build_fischer():
    from repro.systems.extensions import (
        FischerParams,
        fischer_system,
        mutual_exclusion_violated,
    )

    timed = fischer_system(FischerParams(n=2, a=Fraction(1), b=Fraction(2)))
    sim = fischer_system(FischerParams(n=2, a=Fraction(1), b=Fraction(2), e=Fraction(1)))
    return timed, sim, mutual_exclusion_violated


def _build_fischer_tight():
    from repro.systems.extensions import (
        FischerParams,
        fischer_system,
        mutual_exclusion_violated,
    )

    timed = fischer_system(FischerParams(n=2, a=Fraction(1), b=Fraction(1)))
    return timed, None, mutual_exclusion_violated


def _build_peterson():
    from repro.systems.extensions import PetersonParams, both_critical, peterson_system

    timed = peterson_system(PetersonParams(s1=Fraction(1), s2=Fraction(2)))
    return timed, timed, both_critical


def _build_tournament():
    from repro.systems.extensions import (
        TournamentParams,
        tournament_mutex_violated,
        tournament_system,
    )

    timed = tournament_system(TournamentParams(n=2, s1=Fraction(1), s2=Fraction(2)))
    return timed, timed, tournament_mutex_violated


_TRACERS = {
    "rm": _trace_rm,
    "relay": _trace_relay,
    "chain": _trace_chain,
    "fischer": _safety_tracer(_build_fischer, "mutual exclusion violated"),
    "fischer-tight": _safety_tracer(_build_fischer_tight, "mutual exclusion violated"),
    "peterson": _safety_tracer(_build_peterson, "both processes critical"),
    "tournament": _safety_tracer(_build_tournament, "two processes critical"),
}


def trace_names() -> Tuple[str, ...]:
    """Names accepted by :func:`trace_system` (and the CLI)."""
    return tuple(_TRACERS)


def trace_system(
    name: str,
    seed: int = 0,
    steps: int = 80,
    max_events: int = 100_000,
) -> Tuple[Recorder, Dict[str, Any]]:
    """Run one system's checked run under a fresh recorder.

    Returns the recorder (whose ``events`` form the replayable trace)
    and a plain summary dict.  For the deliberately broken
    ``fischer-tight`` system the trace ends with a ``safety.verdict``
    event carrying the reachable violation.
    """
    if name not in _TRACERS:
        raise ReproError(
            "unknown trace target {!r}; expected one of {}".format(
                name, ", ".join(_TRACERS)
            )
        )
    recorder = Recorder(name="trace." + name, max_events=max_events)
    with recording(recorder):
        recorder.event("trace.begin", system=name, seed=seed, max_steps=steps)
        summary = _TRACERS[name](recorder, seed, steps)
        recorder.event("trace.end", system=name, **{
            k: v for k, v in summary.items() if isinstance(v, (bool, int, str))
        })
    summary["events"] = len(recorder.events)
    return recorder, summary
