"""The perf-trajectory benchmark runner behind ``python -m repro bench``.

Micro-profiles every shipped system under a fresh
:class:`~repro.obs.instrument.Recorder`: each profile simulates and/or
symbolically analyses one system the way its CLI command and tests do,
and its wall time plus the recorder's counters/gauges/timers become one
:class:`BenchRecord`.  A :class:`BenchReport` bundles the records with a
schema version and environment stamp and is written to
``BENCH_<n>.json`` at the repo root — the machine-readable perf
trajectory every subsequent optimisation PR is judged against.

:func:`compare_reports` diffs two reports with per-metric regression
thresholds: wall time may wobble with the machine (generous relative
threshold plus an absolute floor), while counters are deterministic
under fixed seeds (tight threshold) — a counter that *grows* means the
engine is doing more work for the same task.  Improvements never count
as regressions.

Rows emitted by the pytest-benchmark suite (``benchmarks/*.py`` via
``conftest.emit``) land in ``benchmarks/bench_rows.jsonl``;
:func:`load_suite_rows` folds them into the report when present.
"""

from __future__ import annotations

import json
import os
import platform
import random
import re
import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.obs.instrument import Recorder, recording
from repro.serialize import SerializationError

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchRecord",
    "BenchReport",
    "MetricDelta",
    "Comparison",
    "bench_names",
    "run_profile",
    "run_bench",
    "compare_reports",
    "load_report",
    "write_report",
    "next_bench_path",
    "latest_bench_path",
    "load_suite_rows",
]

#: Version of the ``BENCH_<n>.json`` schema; unknown versions are
#: rejected on load rather than misread.
BENCH_SCHEMA_VERSION = 1

#: Wall-time regression gate: ratio above which (and absolute growth
#: beyond ``WALL_FLOOR_S``) a profile counts as regressed.
WALL_THRESHOLD = 0.50
WALL_FLOOR_S = 0.05

#: Counter regression gate: counters are seed-deterministic, so > 10%
#: growth (and more than ``COUNTER_FLOOR`` units) flags a regression.
COUNTER_THRESHOLD = 0.10
COUNTER_FLOOR = 10

#: Named timers (``zones.query``, ``analyze.discharge``, …) are gated
#: like wall time but with a tighter absolute floor — they isolate one
#: engine, so they are far less noisy than whole-profile wall clock.
TIMER_FLOOR_S = 0.02

_BENCH_RE = re.compile(r"^BENCH_(\d+)\.json$")

#: Default number of seeded simulation iterations per profile.
DEFAULT_ITERATIONS = 3


@dataclass
class BenchRecord:
    """Wall time + telemetry of one system's micro-profile."""

    system: str
    wall_time: float
    iterations: int
    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, Any] = field(default_factory=dict)
    timers: Dict[str, Any] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "system": self.system,
            "wall_time": self.wall_time,
            "iterations": self.iterations,
            "counters": self.counters,
            "gauges": self.gauges,
            "timers": self.timers,
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "BenchRecord":
        return cls(
            system=payload["system"],
            wall_time=payload["wall_time"],
            iterations=payload["iterations"],
            counters=dict(payload.get("counters", {})),
            gauges=dict(payload.get("gauges", {})),
            timers=dict(payload.get("timers", {})),
            meta=dict(payload.get("meta", {})),
        )


@dataclass
class BenchReport:
    """One benchmark run: schema + environment stamp + per-system records."""

    schema: int
    created: str
    python: str
    platform: str
    records: List[BenchRecord] = field(default_factory=list)
    suite: List[Dict[str, Any]] = field(default_factory=list)

    def record_for(self, system: str) -> Optional[BenchRecord]:
        for record in self.records:
            if record.system == system:
                return record
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "created": self.created,
            "python": self.python,
            "platform": self.platform,
            "records": [r.to_dict() for r in self.records],
            "suite": self.suite,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "BenchReport":
        if not isinstance(payload, dict) or "schema" not in payload:
            raise SerializationError("bench report has no schema field")
        if payload["schema"] != BENCH_SCHEMA_VERSION:
            raise SerializationError(
                "unsupported bench schema version {!r} (supported: {})".format(
                    payload["schema"], BENCH_SCHEMA_VERSION
                )
            )
        return cls(
            schema=payload["schema"],
            created=payload.get("created", ""),
            python=payload.get("python", ""),
            platform=payload.get("platform", ""),
            records=[BenchRecord.from_dict(r) for r in payload.get("records", [])],
            suite=list(payload.get("suite", [])),
        )


# ----------------------------------------------------------------------
# Per-system micro-profiles
# ----------------------------------------------------------------------
#
# Each profile exercises one shipped system the way its CLI command /
# tests do — seeded simulation runs through the paper's mapping checks
# where the system has mappings, exact zone queries where it has claims,
# and a bounded untimed exploration so explorer telemetry shows up
# everywhere.  All randomness is seeded: counters are deterministic.


def _explore_base(automaton, max_states: int = 4_000) -> int:
    from repro.ioa.explorer import explore

    return len(explore(automaton, max_states=max_states).reachable)


def _analyze_leg(name: str) -> Tuple[bool, Dict[str, Any]]:
    """Run the static analyzer as part of a system's profile.

    Its ``analyze.*`` telemetry counters land in the record via the
    active recorder; the returned meta summarises the verdicts.  ``ok``
    is expectation-relative (fischer-tight must be refuted)."""
    from repro.analyze import analyze_system

    report = analyze_system(name)
    return (
        not report.unexpected,
        {
            "analyze_proved": report.proved,
            "analyze_refuted": report.refuted,
            "analyze_unknown": report.unknown,
            "analyze_wall": report.wall,
        },
    )


def _profile_rm(iterations: int) -> Dict[str, Any]:
    from repro.core import check_mapping_on_run
    from repro.sim import Simulator, UniformStrategy
    from repro.systems import (
        GRANT,
        ResourceManagerParams,
        ResourceManagerSystem,
        resource_manager_mapping,
    )
    from repro.zones.analysis import absolute_event_bounds, event_separation_bounds

    system = ResourceManagerSystem(
        ResourceManagerParams(k=3, c1=Fraction(2), c2=Fraction(3), l=Fraction(1))
    )
    mapping = resource_manager_mapping(system)
    ok = True
    for seed in range(iterations):
        run = Simulator(system.algorithm, UniformStrategy(random.Random(seed))).run(
            max_steps=120
        )
        ok = ok and bool(check_mapping_on_run(mapping, run))
    first = absolute_event_bounds(system.timed, GRANT)
    gap = event_separation_bounds(system.timed, GRANT, occurrence=2, reset_on=[GRANT])
    states = _explore_base(system.timed.automaton)
    analyze_ok, analyze_meta = _analyze_leg("rm")
    meta = {
        "ok": ok and analyze_ok,
        "first_grant": repr(first),
        "grant_gap": repr(gap),
        "base_states": states,
    }
    meta.update(analyze_meta)
    return meta


def _profile_relay(iterations: int) -> Dict[str, Any]:
    from repro.core import check_chain_on_run
    from repro.sim import Simulator, UniformStrategy
    from repro.systems import SIGNAL, RelayParams, RelaySystem, relay_hierarchy
    from repro.zones.analysis import event_separation_bounds

    system = RelaySystem(RelayParams(n=3, d1=Fraction(1), d2=Fraction(2)))
    chain = relay_hierarchy(system)
    ok = True
    for seed in range(iterations):
        run = Simulator(system.algorithm, UniformStrategy(random.Random(seed))).run(
            max_steps=80
        )
        ok = ok and bool(check_chain_on_run(chain, run))
    bounds = event_separation_bounds(
        system.timed, SIGNAL(system.params.n), occurrence=1, reset_on=[SIGNAL(0)]
    )
    states = _explore_base(system.timed.automaton)
    analyze_ok, analyze_meta = _analyze_leg("relay")
    meta = {
        "ok": ok and analyze_ok,
        "levels": len(chain),
        "end_to_end": repr(bounds),
        "base_states": states,
    }
    meta.update(analyze_meta)
    return meta


def _profile_chain(iterations: int) -> Dict[str, Any]:
    from repro.core import check_chain_on_run
    from repro.sim import Simulator, UniformStrategy
    from repro.systems.extensions import ChainSystem
    from repro.systems.extensions.chain import EVENT
    from repro.timed.interval import Interval
    from repro.zones.analysis import event_separation_bounds

    system = ChainSystem([Interval(1, 2), Interval(2, 3)])
    chain = system.hierarchy()
    ok = True
    for seed in range(iterations):
        run = Simulator(system.algorithm, UniformStrategy(random.Random(seed))).run(
            max_steps=60
        )
        ok = ok and bool(check_chain_on_run(chain, run))
    bounds = event_separation_bounds(
        system.timed, EVENT(system.m), occurrence=1, reset_on=[EVENT(0)]
    )
    states = _explore_base(system.timed.automaton)
    analyze_ok, analyze_meta = _analyze_leg("chain")
    meta = {
        "ok": ok and analyze_ok,
        "levels": len(chain),
        "end_to_end": repr(bounds),
        "base_states": states,
    }
    meta.update(analyze_meta)
    return meta


def _profile_fischer(iterations: int) -> Dict[str, Any]:
    from repro.core import time_of_boundmap
    from repro.sim import Simulator, UniformStrategy
    from repro.systems.extensions import (
        FischerParams,
        fischer_system,
        mutual_exclusion_violated,
    )
    from repro.zones.analysis import search_reachable_state

    timed = fischer_system(FischerParams(n=2, a=Fraction(1), b=Fraction(2)))
    search = search_reachable_state(timed, mutual_exclusion_violated, max_nodes=400_000)
    violations = 0
    sim = time_of_boundmap(
        fischer_system(FischerParams(n=2, a=Fraction(1), b=Fraction(2), e=Fraction(1)))
    )
    for seed in range(iterations):
        run = Simulator(sim, UniformStrategy(random.Random(seed))).run(max_steps=100)
        violations += sum(
            1 for s in run.states if mutual_exclusion_violated(s.astate)
        )
    states = _explore_base(timed.automaton)
    analyze_ok, analyze_meta = _analyze_leg("fischer")
    meta = {
        "ok": search.state is None and violations == 0 and analyze_ok,
        "verdict": "safe" if search.state is None else "violable",
        "sim_violations": violations,
        "base_states": states,
    }
    meta.update(analyze_meta)
    return meta


def _profile_fischer_tight(iterations: int) -> Dict[str, Any]:
    from repro.systems.extensions import (
        FischerParams,
        fischer_system,
        mutual_exclusion_violated,
    )
    from repro.zones.analysis import search_reachable_state

    timed = fischer_system(FischerParams(n=2, a=Fraction(1), b=Fraction(1)))
    search = search_reachable_state(timed, mutual_exclusion_violated, max_nodes=400_000)
    states = _explore_base(timed.automaton)
    analyze_ok, analyze_meta = _analyze_leg("fischer-tight")
    # A reachable violation is the *expected* finding here (a = b),
    # and the static analyzer must refute the race symbolically too.
    meta = {
        "ok": search.state is not None and analyze_ok,
        "verdict": "violable" if search.state is not None else "safe",
        "base_states": states,
    }
    meta.update(analyze_meta)
    return meta


def _profile_peterson(iterations: int) -> Dict[str, Any]:
    from repro.analysis.recurrence import peterson_first_entry_chain
    from repro.systems.extensions import PetersonParams, both_critical, peterson_system
    from repro.systems.extensions.peterson import ENTER
    from repro.zones.analysis import event_separation_bounds, search_reachable_state

    params = PetersonParams(s1=Fraction(1), s2=Fraction(2))
    timed = peterson_system(params)
    search = search_reachable_state(timed, both_critical, max_nodes=400_000)
    bounds = event_separation_bounds(
        timed, {ENTER(1), ENTER(2)}, occurrence=1, max_nodes=400_000
    )
    operational = peterson_first_entry_chain(params.step_interval).total()
    agree = (bounds.lo, bounds.hi) == (operational.lo, operational.hi)
    states = _explore_base(timed.automaton)
    analyze_ok, analyze_meta = _analyze_leg("peterson")
    meta = {
        "ok": search.state is None and agree and analyze_ok,
        "first_entry": repr(bounds),
        "recurrence_agrees": agree,
        "base_states": states,
    }
    meta.update(analyze_meta)
    return meta


def _profile_tournament(iterations: int) -> Dict[str, Any]:
    from repro.systems.extensions import (
        TournamentParams,
        tournament_mutex_violated,
        tournament_system,
    )
    from repro.zones.analysis import search_reachable_state

    timed = tournament_system(
        TournamentParams(n=2, s1=Fraction(1), s2=Fraction(2))
    )
    search = search_reachable_state(
        timed, tournament_mutex_violated, max_nodes=400_000
    )
    states = _explore_base(timed.automaton)
    analyze_ok, analyze_meta = _analyze_leg("tournament")
    meta = {
        "ok": search.state is None and analyze_ok,
        "verdict": "safe" if search.state is None else "violable",
        "base_states": states,
    }
    meta.update(analyze_meta)
    return meta


def _profile_gen_scaling(iterations: int) -> Dict[str, Any]:
    """Wall-clock scaling of the generated-system families.

    Explores a ladder of instances per family (fischer n = 2..4,
    relay_line k = 2..6) and records per-size states and wall time —
    the BENCH trajectory then gates on the whole record's wall and on
    the seed-deterministic exploration counters, so a generator change
    that blows up a family's state space shows up as a regression.
    ``ok`` requires every exploration to complete untruncated with the
    exact state count the family's construction predicts.
    """
    from repro.gen import build_bundle
    from repro.ioa.explorer import explore

    # name -> reachable-state count the construction predicts.
    expected = {
        "gen:fischer-2": 28,
        "gen:fischer-3": 152,
        "gen:fischer-4": 752,
        "gen:relay_line-2": 4,
        "gen:relay_line-4": 6,
        "gen:relay_line-6": 8,
    }
    meta: Dict[str, Any] = {}
    ok = True
    for name in sorted(expected):
        bundle = build_bundle(name)
        automaton = bundle.timed().automaton
        start = time.perf_counter()
        result = explore(automaton, max_states=bundle.max_states)
        wall = time.perf_counter() - start
        key = name[len("gen:"):].replace("-", "_")
        meta[key + "_states"] = len(result.reachable)
        meta[key + "_wall"] = wall
        ok = ok and not result.truncated
        ok = ok and len(result.reachable) == expected[name]
    meta["ok"] = ok
    return meta


def _profile_par_speedup(iterations: int) -> Dict[str, Any]:
    """Serial vs parallel wall time on the heaviest shipped workload:
    the Section 4.3 resource-manager mapping checked exhaustively at a
    fine grid and long horizon.

    The serial leg runs once; the parallel leg takes the best of two
    (the first pays the fork warm-up).  The record's ``meta`` carries
    the ratio CI gates on (``speedup``) plus a ``verdicts_match`` bit
    re-asserting engine equivalence on this very workload.
    """
    from repro.core.checker import check_mapping_exhaustive
    from repro.par.engine import EngineConfig
    from repro.par.surface import mapping_specs

    _label, mapping, _grid, _horizon = mapping_specs("rm")[0]
    grid, horizon = Fraction(1, 4), Fraction(14)
    workers = int(
        os.environ.get("REPRO_BENCH_WORKERS", min(4, os.cpu_count() or 1))
    )
    workers = max(2, workers)
    start = time.perf_counter()
    serial = check_mapping_exhaustive(
        mapping, grid=grid, horizon=horizon, engine=EngineConfig()
    )
    serial_wall = time.perf_counter() - start
    config = EngineConfig(kind="parallel", workers=workers)
    parallel = None
    parallel_wall = None
    for _attempt in range(2):
        start = time.perf_counter()
        parallel = check_mapping_exhaustive(
            mapping, grid=grid, horizon=horizon, engine=config
        )
        wall = time.perf_counter() - start
        parallel_wall = wall if parallel_wall is None else min(parallel_wall, wall)
    verdicts_match = (serial.ok, serial.steps_checked, serial.detail) == (
        parallel.ok,
        parallel.steps_checked,
        parallel.detail,
    )
    return {
        "ok": serial.ok and verdicts_match,
        "verdicts_match": verdicts_match,
        "steps": serial.steps_checked,
        "workers": workers,
        "serial_wall": serial_wall,
        "parallel_wall": parallel_wall,
        "speedup": serial_wall / parallel_wall if parallel_wall else 0.0,
    }


def _profile_static_speedup(iterations: int) -> Dict[str, Any]:
    """Static obligation discharge vs exploratory mapping check on the
    two mapping-bearing workhorses (rm, relay).

    Both legs decide the same property — does the Definition 3.2
    mapping hold?  The static leg discharges it symbolically
    (Fourier–Motzkin over exact rationals); the exploratory leg sweeps
    the surface grid/horizon with ``check_mapping_exhaustive``.  The
    record's ``meta`` carries per-system speedups plus a
    ``verdicts_match`` bit; ``ok`` gates on agreement and a >= 5x
    static advantage.
    """
    from repro.analyze import Verdict, discharge_system
    from repro.core.checker import check_mapping_exhaustive
    from repro.par.surface import mapping_specs

    # rm's exploratory leg runs at the same fine reference grid the
    # par-speedup profile gates on (its surface grid is a coarse
    # smoke); relay's surface spec is already representative.
    overrides = {"rm": (Fraction(1, 4), Fraction(14))}
    meta: Dict[str, Any] = {}
    ok = True
    for name in ("rm", "relay"):
        best_static = None
        for _attempt in range(max(1, iterations)):
            start = time.perf_counter()
            obligations = discharge_system(name)
            wall = time.perf_counter() - start
            best_static = wall if best_static is None else min(best_static, wall)
        static_ok = all(o.verdict is Verdict.PROVED for o in obligations)
        start = time.perf_counter()
        explored_ok = True
        steps = 0
        for _label, mapping, grid, horizon in mapping_specs(name):
            grid, horizon = overrides.get(name, (grid, horizon))
            outcome = check_mapping_exhaustive(mapping, grid=grid, horizon=horizon)
            explored_ok = explored_ok and outcome.ok
            steps += outcome.steps_checked
        explore_wall = time.perf_counter() - start
        match = static_ok == explored_ok
        speedup = explore_wall / best_static if best_static else 0.0
        meta["{}_static_wall".format(name)] = best_static
        meta["{}_explore_wall".format(name)] = explore_wall
        meta["{}_explore_steps".format(name)] = steps
        meta["{}_speedup".format(name)] = speedup
        meta["{}_verdicts_match".format(name)] = match
        ok = ok and static_ok and match and speedup >= 5.0
    meta["ok"] = ok
    return meta


def _profile_serve_throughput(iterations: int) -> Dict[str, Any]:
    """Request throughput of the serving daemon, cold vs warm.

    Spins an in-process :class:`~repro.serve.app.VerificationService`
    (inline workers, private journal and verdict pool) and measures two
    legs over the analyze battery:

    - **cold** — distinct jobs that must actually execute; req/sec is
      bounded by the engines themselves;
    - **warm** — the same work resubmitted ``iterations`` times; every
      request must be answered at submit straight from the verdict
      cache, so req/sec is bounded by the serving layer alone.

    The record's ``meta``/gauges carry warm and cold req/sec, the warm
    hit rate, and warm p50/p95 submit latencies; ``ok`` gates on a 100%
    warm hit rate and sub-100ms warm p95 — the serving-layer overhead
    budget CI's serve-smoke job also asserts over real HTTP.
    """
    import shutil
    import tempfile

    from repro.obs.instrument import active
    from repro.serve.app import ServeConfig, VerificationService

    # Captured now: inline workers scope their own recorders over the
    # process-global slot mid-run, so "whatever is active later" could
    # misattribute the gauges.
    recorder = active()
    root = tempfile.mkdtemp(prefix="repro-serve-bench-")
    service = VerificationService(
        ServeConfig(
            workers=2,
            isolation=False,
            journal_path=os.path.join(root, "journal.jsonl"),
            backend="dir:" + os.path.join(root, "pool"),
        )
    )
    service.start()
    try:
        batch = [
            {"kind": "analyze", "system": system, "params": {"strict": strict}}
            for system in ("rm", "relay", "chain")
            for strict in (False, True)
        ]
        # Cold leg: every job executes.  Submissions are serialized
        # (submit, wait, next) so the cache counters in this record stay
        # deterministic — inline workers scope the process-global
        # recorder while a job runs, and overlapping a submit with that
        # window would attribute lookups to a random recorder.
        start = time.perf_counter()
        deadline = time.monotonic() + 120.0
        cold_ok = True
        for body in batch:
            status, doc = service.submit(body)
            if status != 202:
                return {"ok": False, "detail": "cold submit got {}".format(status)}
            while True:
                polled = service.get_job(doc["job_id"])
                if polled["state"] == "done":
                    cold_ok = cold_ok and bool(polled["result"]["ok"])
                    break
                if time.monotonic() > deadline:
                    return {"ok": False, "detail": "cold jobs never settled"}
                time.sleep(0.002)
        cold_wall = time.perf_counter() - start

        # Warm leg: identical requests, answered from the verdict pool.
        latencies = []
        hits = 0
        start = time.perf_counter()
        for _round in range(max(1, iterations)):
            for body in batch:
                t0 = time.perf_counter()
                status, doc = service.submit(body)
                latencies.append((time.perf_counter() - t0) * 1000.0)
                if status == 200 and doc.get("result", {}).get("cached"):
                    hits += 1
        warm_wall = time.perf_counter() - start
        latencies.sort()
        warm_p50 = latencies[len(latencies) // 2]
        warm_p95 = latencies[min(len(latencies) - 1, int(len(latencies) * 0.95))]
        hit_rate = hits / len(latencies)
        cold_rps = len(batch) / cold_wall if cold_wall else 0.0
        warm_rps = len(latencies) / warm_wall if warm_wall else 0.0
        if recorder is not None:
            recorder.gauge("serve.cold_rps", cold_rps)
            recorder.gauge("serve.warm_rps", warm_rps)
            recorder.gauge("serve.warm_hit_rate", hit_rate)
            recorder.gauge("serve.warm_p50_ms", warm_p50)
            recorder.gauge("serve.warm_p95_ms", warm_p95)
        return {
            "ok": cold_ok and hit_rate == 1.0 and warm_p95 < 100.0,
            "cold_jobs": len(batch),
            "cold_wall": cold_wall,
            "cold_rps": cold_rps,
            "warm_requests": len(latencies),
            "warm_wall": warm_wall,
            "warm_rps": warm_rps,
            "warm_hit_rate": hit_rate,
            "warm_p50_ms": warm_p50,
            "warm_p95_ms": warm_p95,
        }
    finally:
        service.drain(grace_s=30.0)
        service.journal.close()
        shutil.rmtree(root, ignore_errors=True)


def _profile_dist_scaling(iterations: int) -> Dict[str, Any]:
    """Single-host vs two-worker distributed campaign wall time.

    The serial leg runs a representative job mix inline through the
    local :class:`~repro.runner.supervisor.Supervisor`; the dist leg
    pre-starts two :mod:`repro.dist` worker *processes* on loopback
    (inline execution inside each, so the parallelism measured is
    across hosts, not subprocess spawn overhead) and drives the same
    jobs through the :class:`~repro.dist.coordinator.DistCoordinator`.
    Worker start-up is outside the timed window — a campaign joins a
    standing fleet; it does not boot one.

    The verdict cache is disabled on both legs (a warm pool would
    measure the cache, not the transport).  ``meta`` carries the ratio
    CI gates on (``speedup`` >= 1.5x at 2 workers) plus a
    ``verdicts_match`` bit re-asserting that distribution changes
    wall-clock time, never verdicts.
    """
    import multiprocessing

    from repro.dist import DistConfig, DistCoordinator
    from repro.dist.worker import run_worker_process
    from repro.runner import Supervisor, default_jobs

    def job_mix(systems=None, seeds=4, steps=80):
        jobs = default_jobs(
            systems=systems,
            kinds=["check", "perturb"],
            seeds=seeds,
            steps=steps,
            seed=0,
            epsilon=Fraction(1, 32),
            max_states=200_000,
            max_steps=2_000_000,
            wall_time=60.0,
            fuzz_count=4,
            fuzz_shard=4,
        )
        # Longest-first makespan scheduling: the rm jobs dominate this
        # mix, and assigning them first keeps the two workers balanced
        # (a heavy job assigned last serialises the whole tail).
        jobs.sort(key=lambda job: (job.system != "rm", job.job_id))
        return jobs

    def verdict_projection(report):
        return sorted(
            (o.job_id, o.status, o.ok, o.detail) for o in report.outcomes
        )

    start = time.perf_counter()
    serial = Supervisor(job_mix(), workers=0, cache=False).run()
    serial_wall = time.perf_counter() - start

    ctx = multiprocessing.get_context("spawn")
    ready = ctx.Queue()
    workers = [
        ctx.Process(target=run_worker_process, args=(ready,), daemon=True)
        for _ in range(2)
    ]
    for process in workers:
        process.start()
    try:
        ports = [ready.get(timeout=30.0) for _ in workers]
        config = DistConfig(
            hosts=[("127.0.0.1", port) for port in ports],
            lease_ms=10_000,
            heartbeat_ms=1_000,
            timeout=120.0,
        )
        # Warm-up campaign (untimed): a couple of tiny jobs per worker
        # pull the verification engines' lazy imports into each worker
        # process, the way a standing fleet is already warm.
        DistCoordinator(
            job_mix(systems=["peterson", "tournament"], seeds=1, steps=10),
            config,
            job_cache=False,
        ).run()
        start = time.perf_counter()
        dist = DistCoordinator(job_mix(), config, job_cache=False).run()
        dist_wall = time.perf_counter() - start
    finally:
        for process in workers:
            process.terminate()
            process.join(2.0)
    verdicts_match = verdict_projection(serial) == verdict_projection(dist)
    speedup = serial_wall / dist_wall if dist_wall else 0.0
    # ``ok`` gates on correctness (identical verdicts, clean completion);
    # the >= 1.5x ratio is asserted by CI's dist-smoke job on multi-core
    # runners — on a single-core box two workers time-slice one CPU and
    # wall-clock speedup is physically unavailable (``cpus`` says which
    # situation this record measured).
    return {
        "ok": serial.ok and dist.ok and verdicts_match and not dist.interrupted,
        "verdicts_match": verdicts_match,
        "jobs": len(serial.outcomes),
        "workers": 2,
        "cpus": os.cpu_count() or 1,
        "serial_wall": serial_wall,
        "dist_wall": dist_wall,
        "speedup": speedup,
        "degraded": bool(
            dist.telemetry.get("counters", {}).get("dist.degraded", 0)
        ),
    }


#: name -> profile callable; ordered like ``repro perturb``'s registry.
PROFILES: Dict[str, Callable[[int], Dict[str, Any]]] = {
    "rm": _profile_rm,
    "relay": _profile_relay,
    "chain": _profile_chain,
    "fischer": _profile_fischer,
    "fischer-tight": _profile_fischer_tight,
    "peterson": _profile_peterson,
    "tournament": _profile_tournament,
    "gen-scaling": _profile_gen_scaling,
}

#: Opt-in profiles outside the default battery: their wall times are
#: machine-shaped by design (what matters is a ratio in ``meta``), so
#: they never enter the BENCH trajectory unless explicitly requested.
EXTRA_PROFILES: Dict[str, Callable[[int], Dict[str, Any]]] = {
    "par-speedup": _profile_par_speedup,
    "static-speedup": _profile_static_speedup,
    "serve-throughput": _profile_serve_throughput,
    "dist-scaling": _profile_dist_scaling,
}


def bench_names() -> Tuple[str, ...]:
    """Names in the default battery (``repro bench`` with no
    ``--systems``); :data:`EXTRA_PROFILES` are accepted by name only."""
    return tuple(PROFILES)


def run_profile(name: str, iterations: int = DEFAULT_ITERATIONS) -> BenchRecord:
    """Run one system's micro-profile under a fresh recorder."""
    profile = PROFILES.get(name) or EXTRA_PROFILES.get(name)
    if profile is None:
        raise ReproError(
            "unknown bench profile {!r}; expected one of {}".format(
                name, ", ".join(list(PROFILES) + list(EXTRA_PROFILES))
            )
        )
    recorder = Recorder(name="bench." + name, max_events=256)
    with recording(recorder):
        start = time.perf_counter()
        meta = profile(iterations)
        wall = time.perf_counter() - start
    snap = recorder.snapshot()
    return BenchRecord(
        system=name,
        wall_time=wall,
        iterations=iterations,
        counters=snap["counters"],
        gauges=snap["gauges"],
        timers=snap["timers"],
        meta=meta,
    )


def run_bench(
    systems: Optional[Sequence[str]] = None,
    iterations: int = DEFAULT_ITERATIONS,
    suite_rows_path: Optional[str] = None,
    cache=None,
) -> BenchReport:
    """Profile the requested systems (default: all seven) into a report.

    With a :class:`~repro.cache.store.VerdictCache`, default-battery
    records round-trip through it: an unchanged source tree reuses the
    record (wall time included — it was measured on this exact code),
    which is what lets a cache-warm CI skip re-benching settled
    revisions.  :data:`EXTRA_PROFILES` (``par-speedup``) are never
    cached — their whole product is a fresh measurement.
    """
    names = list(systems) if systems else list(PROFILES)
    report = BenchReport(
        schema=BENCH_SCHEMA_VERSION,
        created=time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        python=platform.python_version(),
        platform=platform.platform(),
    )
    for name in names:
        cacheable = cache is not None and name in PROFILES
        parts = {"iterations": iterations}
        if cacheable:
            hit = cache.lookup("bench", name, parts)
            if hit is not None:
                record = BenchRecord.from_dict(hit["record"])
                record.meta["cached"] = True
                report.records.append(record)
                continue
        record = run_profile(name, iterations=iterations)
        if cacheable:
            cache.store("bench", name, parts, {"record": record.to_dict()})
        report.records.append(record)
    if suite_rows_path and os.path.exists(suite_rows_path):
        report.suite = load_suite_rows(suite_rows_path)
    return report


# ----------------------------------------------------------------------
# Persistence: BENCH_<n>.json at the repo root
# ----------------------------------------------------------------------


def _bench_indices(root: str) -> List[int]:
    if not os.path.isdir(root):
        return []
    indices = []
    for entry in os.listdir(root):
        match = _BENCH_RE.match(entry)
        if match:
            indices.append(int(match.group(1)))
    return sorted(indices)


def next_bench_path(root: str = ".") -> str:
    """The next free ``BENCH_<n>.json`` path under ``root``."""
    indices = _bench_indices(root)
    nxt = indices[-1] + 1 if indices else 0
    return os.path.join(root, "BENCH_{}.json".format(nxt))


def latest_bench_path(root: str = ".") -> Optional[str]:
    """The most recent existing ``BENCH_<n>.json`` (None when none)."""
    indices = _bench_indices(root)
    if not indices:
        return None
    return os.path.join(root, "BENCH_{}.json".format(indices[-1]))


def write_report(report: BenchReport, path: str) -> str:
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_report(path: str) -> BenchReport:
    with open(path) as fh:
        return BenchReport.from_dict(json.load(fh))


def load_suite_rows(path: str) -> List[Dict[str, Any]]:
    """Parse the machine-readable rows ``benchmarks/conftest.emit``
    appends (one JSON object per line)."""
    rows = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


# ----------------------------------------------------------------------
# Comparison with per-metric regression thresholds
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class MetricDelta:
    """One metric compared across two reports."""

    system: str
    metric: str
    old: float
    new: float
    regressed: bool

    @property
    def ratio(self) -> Optional[float]:
        if self.old == 0:
            return None
        return self.new / self.old


@dataclass
class Comparison:
    """The diff of two bench reports."""

    deltas: List[MetricDelta] = field(default_factory=list)
    #: Systems present in the old report but missing from the new one —
    #: a silently dropped profile must not read as "no regressions".
    missing: List[str] = field(default_factory=list)
    added: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.missing

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "missing": self.missing,
            "added": self.added,
            "regressions": [
                {
                    "system": d.system,
                    "metric": d.metric,
                    "old": d.old,
                    "new": d.new,
                    "ratio": d.ratio,
                }
                for d in self.regressions
            ],
            "deltas": [
                {
                    "system": d.system,
                    "metric": d.metric,
                    "old": d.old,
                    "new": d.new,
                    "ratio": d.ratio,
                    "regressed": d.regressed,
                }
                for d in self.deltas
            ],
        }

    def render(self) -> str:
        from repro.analysis.report import Table

        table = Table(
            "bench comparison (per-metric regression gates)",
            ["system", "metric", "previous", "current", "ratio", "verdict"],
        )
        for d in self.deltas:
            table.add_row(
                d.system,
                d.metric,
                "{:.4g}".format(d.old),
                "{:.4g}".format(d.new),
                "-" if d.ratio is None else "{:.2f}x".format(d.ratio),
                "REGRESSED" if d.regressed else "ok",
            )
        lines = [table.render()]
        if self.missing:
            lines.append("missing systems (regression): " + ", ".join(self.missing))
        if self.added:
            lines.append("new systems: " + ", ".join(self.added))
        lines.append("verdict: {}".format("ok" if self.ok else "REGRESSED"))
        return "\n".join(lines)


def compare_reports(
    old: BenchReport,
    new: BenchReport,
    wall_threshold: float = WALL_THRESHOLD,
    counter_threshold: float = COUNTER_THRESHOLD,
) -> Comparison:
    """Diff ``new`` against ``old`` with per-metric thresholds.

    Wall time regresses when it grows by more than ``wall_threshold``
    relatively *and* ``WALL_FLOOR_S`` absolutely.  A counter regresses
    when it grows by more than ``counter_threshold`` relatively and
    ``COUNTER_FLOOR`` units absolutely — counters are deterministic
    under fixed seeds, so growth means the engine got less efficient.
    When the new run used fewer iterations than the old one (a CI
    smoke), counters can only shrink, so only wall time is gated.

    Named timers (``timer:<name>`` deltas over ``total_s``) are gated
    like wall time but over :data:`TIMER_FLOOR_S` — and only when the
    two runs made the same number of calls to the timer, so a profile
    that legitimately changed shape is not misread as a regression.
    """
    comparison = Comparison()
    new_names = {r.system for r in new.records}
    comparison.missing = [
        r.system for r in old.records if r.system not in new_names
    ]
    old_names = {r.system for r in old.records}
    comparison.added = [r.system for r in new.records if r.system not in old_names]
    for record in new.records:
        previous = old.record_for(record.system)
        if previous is None:
            continue
        grew = record.wall_time - previous.wall_time
        comparison.deltas.append(
            MetricDelta(
                system=record.system,
                metric="wall_time",
                old=previous.wall_time,
                new=record.wall_time,
                regressed=(
                    previous.wall_time > 0
                    and grew > WALL_FLOOR_S
                    and record.wall_time > previous.wall_time * (1 + wall_threshold)
                ),
            )
        )
        same_workload = record.iterations >= previous.iterations
        for name in sorted(set(previous.counters) & set(record.counters)):
            before, after = previous.counters[name], record.counters[name]
            comparison.deltas.append(
                MetricDelta(
                    system=record.system,
                    metric=name,
                    old=before,
                    new=after,
                    regressed=(
                        same_workload
                        and after - before > COUNTER_FLOOR
                        and after > before * (1 + counter_threshold)
                    ),
                )
            )
        for name in sorted(set(previous.timers) & set(record.timers)):
            old_timer, new_timer = previous.timers[name], record.timers[name]
            old_s = float(old_timer.get("total_s", 0.0))
            new_s = float(new_timer.get("total_s", 0.0))
            comparable = (
                same_workload
                and old_timer.get("calls") == new_timer.get("calls")
            )
            comparison.deltas.append(
                MetricDelta(
                    system=record.system,
                    metric="timer:" + name,
                    old=old_s,
                    new=new_s,
                    regressed=(
                        comparable
                        and old_s > 0
                        and new_s - old_s > TIMER_FLOOR_S
                        and new_s > old_s * (1 + wall_threshold)
                    ),
                )
            )
    return comparison
