"""repro.obs — observability: telemetry, tracing, and the perf
trajectory.

- :mod:`repro.obs.instrument` — the zero-dependency telemetry core
  (:class:`Recorder`, counters/gauges/timers/trace events) every engine
  hooks into;
- :mod:`repro.obs.bench` — the benchmark runner behind
  ``python -m repro bench``: micro-profiles each shipped system,
  aggregates wall time + telemetry into a versioned ``BENCH_<n>.json``
  and compares runs with per-metric regression thresholds;
- :mod:`repro.obs.tracing` — builds the replayable JSONL event traces
  behind ``python -m repro trace``.

Only the instrument core is imported eagerly (it has no dependencies
and is imported *by* the engines); import :mod:`repro.obs.bench` and
:mod:`repro.obs.tracing` explicitly — they pull in the systems and
engines.
"""

from repro.obs.instrument import (
    GaugeStat,
    Recorder,
    TimerStat,
    TraceEvent,
    active,
    emit,
    gauge,
    incr,
    install,
    jsonable,
    recording,
    span,
    uninstall,
)

__all__ = [
    "TraceEvent",
    "GaugeStat",
    "TimerStat",
    "Recorder",
    "active",
    "recording",
    "install",
    "uninstall",
    "incr",
    "gauge",
    "emit",
    "span",
    "jsonable",
]
