"""repro.dist — fault-tolerant multi-host campaign distribution.

Lifts :mod:`repro.runner` from a single-host spawn pool to a
coordinator + N remote workers over a length-prefixed JSON socket
transport (stdlib-only, the same spirit as :mod:`repro.serve`):

- :mod:`repro.dist.protocol` — the framed wire format and its
  message vocabulary (``hello``/``register``/``assign``/``heartbeat``/
  ``result``/``bye``);
- :mod:`repro.dist.leases` — time-bounded job leases with monotonic
  per-job epochs, the mechanism that makes ledger merge idempotent
  under partitions;
- :mod:`repro.dist.worker` — the remote worker daemon
  (``python -m repro dist worker``);
- :mod:`repro.dist.coordinator` — the campaign coordinator behind
  ``repro run --dist`` (leases, heartbeats, reassignment, degraded
  local fallback);
- :mod:`repro.dist.cache_sync` — verdict-cache entry sync between
  coordinator and workers through the pluggable backend layer;
- :mod:`repro.dist.netfaults` — a deterministic network fault injector
  (drop/delay/duplicate/reorder frames, sever mid-frame) behind the
  chaos tests.

The design inherits the repo's one discipline: every verification job
is a pure function of (system, claim, budget), so verdicts computed on
any host are byte-identical — distribution may lose time, never truth.
"""

from repro.dist.coordinator import DistConfig, DistCoordinator, parse_hosts
from repro.dist.leases import Lease, LeaseTable
from repro.dist.netfaults import FaultPlan, FaultyConnection, parse_plan
from repro.dist.protocol import (
    PROTOCOL_VERSION,
    ConnectionClosed,
    FrameConnection,
    ProtocolError,
)
from repro.dist.worker import EXIT_DIST_TRANSPORT, DistWorker

__all__ = [
    "PROTOCOL_VERSION",
    "ConnectionClosed",
    "FrameConnection",
    "ProtocolError",
    "Lease",
    "LeaseTable",
    "FaultPlan",
    "FaultyConnection",
    "parse_plan",
    "DistConfig",
    "DistCoordinator",
    "parse_hosts",
    "DistWorker",
    "EXIT_DIST_TRANSPORT",
]
