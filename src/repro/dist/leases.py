"""Time-bounded job leases with monotonic per-job epochs.

A lease is the coordinator's claim check: job ``J`` belongs to worker
``W`` until instant ``expires_at`` (monotonic clock), and the worker
keeps it alive by heartbeating.  The part that makes distribution
*safe* rather than merely fast is the **epoch**: every grant of a job
— first assignment or reassignment after a crash/partition — bumps a
per-job counter that never goes backwards, and every heartbeat and
result the worker sends carries the epoch it was granted.  When a
partitioned worker reappears and ships the result of work the
coordinator already reassigned, the stale epoch identifies it and the
ledger merge discards it instead of double-recording the job — the
same stale-claim discipline the paper's mappings impose on timing
claims: an assertion is only as good as the epoch it was proved in.

The table is deliberately passive: it never reads the clock itself.
Callers pass ``now`` (``time.monotonic()``) in, which keeps every
expiry decision testable without sleeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["Lease", "LeaseTable"]


@dataclass
class Lease:
    """One active claim: job → worker, bounded in time, stamped with
    the grant epoch."""

    job_id: str
    worker_id: str
    epoch: int
    granted_at: float
    expires_at: float
    lease_s: float
    renewals: int = 0

    def current(self, now: float) -> bool:
        return now < self.expires_at


class LeaseTable:
    """All active leases plus the per-job epoch counters.

    Epochs survive release and expiry — they are the job's reassignment
    history, not the lease's — so a result stamped with any epoch other
    than the *latest grant's* is recognisably stale forever.
    """

    def __init__(self):
        self._active: Dict[str, Lease] = {}
        self._epochs: Dict[str, int] = {}

    # -- grants --------------------------------------------------------

    def grant(self, job_id: str, worker_id: str, lease_s: float, now: float) -> Lease:
        """Lease ``job_id`` to ``worker_id``; bumps the job's epoch.

        Granting over an existing active lease is a coordinator bug —
        a job must be released (result) or expired (reclaim) first.
        """
        if lease_s <= 0:
            raise ValueError("lease_s must be positive")
        if job_id in self._active:
            raise ValueError("job {!r} already has an active lease".format(job_id))
        epoch = self._epochs.get(job_id, 0) + 1
        self._epochs[job_id] = epoch
        lease = Lease(
            job_id=job_id,
            worker_id=worker_id,
            epoch=epoch,
            granted_at=now,
            expires_at=now + lease_s,
            lease_s=lease_s,
        )
        self._active[job_id] = lease
        return lease

    def renew(self, job_id: str, worker_id: str, epoch: int, now: float) -> bool:
        """Extend the lease on a heartbeat; ``False`` when the
        heartbeat is stale (no active lease, a different worker's, an
        old epoch, or already expired) — stale heartbeats must not
        resurrect a reclaimed job."""
        lease = self._active.get(job_id)
        if (
            lease is None
            or lease.worker_id != worker_id
            or lease.epoch != epoch
            or not lease.current(now)
        ):
            return False
        lease.expires_at = now + lease.lease_s
        lease.renewals += 1
        return True

    def release(self, job_id: str) -> Optional[Lease]:
        """Drop the active lease (job settled or reclaimed); the epoch
        stays behind to date any late results."""
        return self._active.pop(job_id, None)

    # -- staleness -----------------------------------------------------

    def is_current(
        self, job_id: str, epoch: int, worker_id: Optional[str] = None
    ) -> bool:
        """Is (job, epoch[, worker]) the *latest grant*?  The ledger
        merge admits a result only when this holds."""
        lease = self._active.get(job_id)
        if lease is None or lease.epoch != epoch:
            return False
        return worker_id is None or lease.worker_id == worker_id

    def epoch(self, job_id: str) -> int:
        """The job's latest grant epoch (0 = never granted)."""
        return self._epochs.get(job_id, 0)

    # -- expiry --------------------------------------------------------

    def expired(self, now: float) -> List[Lease]:
        """Active leases whose heartbeat window has lapsed, oldest
        first.  The caller reclaims them (release + reassign)."""
        lapsed = [l for l in self._active.values() if not l.current(now)]
        return sorted(lapsed, key=lambda l: l.expires_at)

    def held_by(self, worker_id: str) -> List[Lease]:
        """Active leases held by one worker (reclaimed wholesale when
        its connection dies)."""
        return [l for l in self._active.values() if l.worker_id == worker_id]

    def active(self) -> List[Lease]:
        return list(self._active.values())

    def __len__(self) -> int:
        return len(self._active)
