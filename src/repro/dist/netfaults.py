"""Deterministic network fault injection for the dist transport.

The chaos counterpart of :mod:`repro.faults` at the wire: a
:class:`FaultyConnection` wraps a :class:`~repro.dist.protocol.
FrameConnection` and perturbs its *outbound* frames according to an
explicit :class:`FaultPlan` — no randomness in the hot path, so every
chaos test replays exactly:

- ``drop``     — swallow the frame (a lossy link);
- ``dup``      — send the frame twice (a retransmitting link; the
  coordinator's idempotent merge must discard the twin);
- ``delay:MS`` — hold the frame ``MS`` milliseconds before sending
  (congestion; leases must ride it out);
- ``reorder``  — hold the frame and release it *after* the next one
  (out-of-order delivery; epoch stamps must keep the merge correct);
- ``sever``    — transmit only the first half of the encoded frame and
  hard-close the socket (a partition mid-write; the reader sees a torn
  frame, never a short parse).

Plans address frames by **kind and ordinal**, not by global index —
heartbeat cadence is timing-dependent, so ``sever@result:2`` ("sever
while sending the second result") stays deterministic no matter how
many heartbeats interleave.  Spec grammar, comma-separated::

    op@kind:N[:arg]     e.g.  sever@result:2,dup@result:1,delay@heartbeat:3:150

``python -m repro dist worker --chaos SPEC`` applies a plan to the
worker's side of the wire, which is how CI's dist-smoke job proves a
campaign survives a mid-frame partition with zero lost jobs.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple

from repro.dist.protocol import ConnectionClosed, FrameConnection, encode_frame
from repro.errors import ReproError

__all__ = ["FAULT_OPS", "FaultPlan", "FaultyConnection", "parse_plan"]

#: Recognised fault operations (``delay`` takes a milliseconds arg).
FAULT_OPS = ("drop", "dup", "delay", "reorder", "sever")


class FaultPlan:
    """Which fault hits which outbound frame.

    Keyed by ``(kind, ordinal)`` where the ordinal counts frames *of
    that kind* sent so far (1-based).  One frame may carry at most one
    op — chaos tests want attributable failures, not compound ones.
    """

    def __init__(self, ops: Optional[Dict[Tuple[str, int], Tuple[str, Optional[int]]]] = None):
        self.ops: Dict[Tuple[str, int], Tuple[str, Optional[int]]] = dict(ops or {})

    def add(self, op: str, kind: str, ordinal: int, arg: Optional[int] = None) -> "FaultPlan":
        if op not in FAULT_OPS:
            raise ReproError(
                "unknown fault op {!r}; expected one of {}".format(
                    op, ", ".join(FAULT_OPS)
                )
            )
        if ordinal < 1:
            raise ReproError("fault ordinal must be >= 1, got {}".format(ordinal))
        if op == "delay" and (arg is None or arg < 0):
            raise ReproError("delay needs a nonnegative milliseconds arg")
        key = (kind, ordinal)
        if key in self.ops:
            raise ReproError(
                "frame {}:{} already carries a fault".format(kind, ordinal)
            )
        self.ops[key] = (op, arg)
        return self

    def lookup(self, kind: str, ordinal: int) -> Optional[Tuple[str, Optional[int]]]:
        return self.ops.get((kind, ordinal))

    def __len__(self) -> int:
        return len(self.ops)

    def describe(self) -> str:
        parts = []
        for (kind, ordinal), (op, arg) in sorted(self.ops.items()):
            spec = "{}@{}:{}".format(op, kind, ordinal)
            if arg is not None:
                spec += ":{}".format(arg)
            parts.append(spec)
        return ",".join(parts)


def parse_plan(spec: str) -> FaultPlan:
    """Parse ``op@kind:N[:arg]`` comma lists into a :class:`FaultPlan`.

    Raises :class:`ReproError` on anything malformed — a typo'd chaos
    spec must fail the run loudly, not silently test nothing.
    """
    plan = FaultPlan()
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        op, sep, rest = chunk.partition("@")
        if not sep or not rest:
            raise ReproError(
                "malformed fault spec {!r}; expected op@kind:N[:arg]".format(chunk)
            )
        fields = rest.split(":")
        if len(fields) < 2 or len(fields) > 3:
            raise ReproError(
                "malformed fault spec {!r}; expected op@kind:N[:arg]".format(chunk)
            )
        kind = fields[0]
        try:
            ordinal = int(fields[1])
        except ValueError:
            raise ReproError(
                "fault spec {!r}: ordinal {!r} is not an integer".format(
                    chunk, fields[1]
                )
            )
        arg = None
        if len(fields) == 3:
            try:
                arg = int(fields[2])
            except ValueError:
                raise ReproError(
                    "fault spec {!r}: arg {!r} is not an integer".format(
                        chunk, fields[2]
                    )
                )
        plan.add(op, kind, ordinal, arg)
    if not len(plan):
        raise ReproError("empty fault spec")
    return plan


class FaultyConnection(FrameConnection):
    """A :class:`FrameConnection` whose sends obey a :class:`FaultPlan`.

    Receiving is untouched — faults are injected where the *sender*
    sits, so a worker under chaos perturbs exactly its own traffic and
    the coordinator's recovery machinery is what gets tested.
    """

    def __init__(
        self,
        sock,
        plan: FaultPlan,
        counts: Optional[Dict[str, int]] = None,
        injected: Optional[List[str]] = None,
    ):
        super().__init__(sock)
        self.plan = plan
        # ``counts``/``injected`` may be shared across connections (the
        # dist worker passes daemon-lifetime dicts), so ``sever@result:2``
        # means "the second result this *daemon* ever sends" and a
        # severed worker recovers clean on the next session.
        self._kind_counts: Dict[str, int] = counts if counts is not None else {}
        self._held: Optional[Dict[str, Any]] = None
        self.injected: List[str] = injected if injected is not None else []

    def send(self, body: Dict[str, Any]) -> None:
        kind = body.get("kind", "?")
        ordinal = self._kind_counts.get(kind, 0) + 1
        self._kind_counts[kind] = ordinal
        fault = self.plan.lookup(kind, ordinal)
        if fault is None:
            super().send(body)
            self._flush_held()
            return
        op, arg = fault
        self.injected.append("{}@{}:{}".format(op, kind, ordinal))
        if op == "drop":
            return
        if op == "dup":
            super().send(body)
            super().send(body)
            self._flush_held()
            return
        if op == "delay":
            time.sleep((arg or 0) / 1000.0)
            super().send(body)
            self._flush_held()
            return
        if op == "reorder":
            # Held until the next outbound frame overtakes it.
            self._held = dict(body)
            return
        if op == "sever":
            self._sever(body)
            return
        raise AssertionError("unreachable fault op {!r}".format(op))

    def _flush_held(self) -> None:
        if self._held is not None:
            held, self._held = self._held, None
            super().send(held)

    def _sever(self, body: Dict[str, Any]) -> None:
        """Write half a frame, then kill the connection — the reader
        must see a torn frame, never a plausible short one."""
        raw = encode_frame(body)
        half = raw[: max(1, len(raw) // 2)]
        with self._send_lock:
            self._closed = True
            try:
                self.sock.sendall(half)
            except OSError:
                pass
            try:
                self.sock.close()
            except OSError:
                pass
        raise ConnectionClosed("chaos: severed mid-frame")
