"""Two-way verdict-cache sync between coordinator and dist workers.

The content-addressed verdict cache (:mod:`repro.cache`) already makes
re-verification free *within* a host; distribution wants the same
across hosts without shipping whole cache directories around.  The
dist layer syncs entries opportunistically, riding frames that flow
anyway:

- **coordinator → worker** — an ``assign`` frame carries the
  coordinator's cached verdict for that exact job (when it has one);
  the worker seeds its local pool before executing, so the attempt
  resolves as a warm hit instead of recomputing;
- **worker → coordinator** — a ``result`` frame carries the entry the
  worker stored (when the verdict was cacheable); the coordinator
  folds it into its own pool, so the *next* campaign — or a sibling
  daemon sharing the same dir/sqlite backend from
  :mod:`repro.serve.backends` — starts warm.

Cacheability follows :func:`repro.runner.jobs.execute_job` exactly —
conclusive, error-free, budget-uncut verdicts only, keyed by
:func:`repro.runner.jobs.job_cache_parts` — so a verdict entering the
pool through the dist path is indistinguishable from one computed
locally.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.runner.jobs import Job, job_cache_parts

__all__ = ["cacheable_entry", "lookup_entry", "store_entry"]

#: Payload keys never synced: ``wall`` is host-local timing,
#: ``telemetry`` is merged separately, ``cached`` is per-lookup state.
_UNSYNCED_KEYS = frozenset({"wall", "telemetry", "cached"})


def cacheable_entry(job: Job, payload: Any) -> Optional[Dict[str, Any]]:
    """The syncable entry for this attempt, or ``None`` when the
    verdict must not enter any pool (inconclusive, errored, budget-cut,
    uncacheable job kind, chaos attempt)."""
    if job_cache_parts(job) is None:
        return None
    if not isinstance(payload, dict):
        return None
    if payload.get("error") is not None:
        return None
    if not payload.get("conclusive", False) or payload.get("exhausted_budget"):
        return None
    return {k: v for k, v in payload.items() if k not in _UNSYNCED_KEYS}


def lookup_entry(cache, job: Job) -> Optional[Dict[str, Any]]:
    """The pool's stored verdict for ``job``, or ``None`` on a miss
    (including the no-cache configuration)."""
    if cache is None:
        return None
    parts = job_cache_parts(job)
    if parts is None:
        return None
    hit = cache.lookup(job.kind, job.system, parts)
    if hit is None or hit.get("job_id") != job.job_id:
        return None
    return hit


def store_entry(cache, job: Job, entry: Optional[Dict[str, Any]]) -> bool:
    """Fold a synced entry into the pool; ``True`` when stored."""
    if cache is None or not isinstance(entry, dict):
        return False
    parts = job_cache_parts(job)
    if parts is None:
        return False
    cache.store(job.kind, job.system, parts, entry)
    return True
