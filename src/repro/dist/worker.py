"""The remote campaign worker (``python -m repro dist worker``).

A dist worker is a long-lived daemon that listens on a TCP port and
serves coordinators one connection at a time.  Per session it:

1. answers the coordinator's ``hello`` with a ``register`` frame
   (worker id, hostname, pid — the identity every ledger entry and
   result it produces is stamped with);
2. executes ``assign`` frames one job at a time, each attempt in a
   **spawn-isolated subprocess** with a wall-clock watchdog (the same
   crash/hang containment ``repro run`` gives local jobs; ``--inline``
   trades that isolation for speed in benchmarks and tests);
3. **heartbeats** the job's lease from a background thread while the
   attempt runs, so a healthy-but-slow job is distinguishable from a
   dead host;
4. ships a ``result`` frame stamped with the lease epoch and its own
   identity — evidence the coordinator's idempotent merge can date.

The worker is deliberately stateless across sessions: it holds no
campaign state, so killing it (the chaos tests do, with SIGKILL) loses
nothing but the attempt in flight, which the coordinator's lease
machinery reclaims and reassigns.  A worker that loses its coordinator
goes straight back to ``accept`` — partitions end sessions, never the
daemon.

Exit codes: ``0`` on a clean shutdown (``--once`` session completed,
or SIGINT), :data:`EXIT_DIST_TRANSPORT` (``5``) when the listen socket
cannot be established — the one failure a worker cannot serve through.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import uuid
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.dist import protocol
from repro.dist.cache_sync import cacheable_entry, lookup_entry, store_entry
from repro.dist.netfaults import FaultPlan, FaultyConnection
from repro.dist.protocol import ConnectionClosed, FrameConnection, ProtocolError
from repro.runner.jobs import Job, execute_job

__all__ = ["DistWorker", "EXIT_DIST_TRANSPORT", "run_worker_process"]

#: Exit code for an unrecoverable transport failure (bind refused).
EXIT_DIST_TRANSPORT = 5

#: Seconds granted to a killed attempt subprocess before SIGKILL.
_KILL_GRACE_S = 0.5


class DistWorker:
    """One remote worker daemon: listen, register, execute, heartbeat.

    ``isolation=True`` (the daemon default) runs every attempt in a
    spawned subprocess with a watchdog; ``isolation=False`` executes
    attempts inline in this process — no hang protection, for tests
    and throughput benchmarks.  ``chaos`` takes a
    :class:`~repro.dist.netfaults.FaultPlan` applied to this worker's
    outbound frames.  ``on_ready(port)`` fires once the socket is
    bound (how in-process tests and the bench harness learn an
    ephemeral port).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        isolation: bool = True,
        once: bool = False,
        chaos: Optional[FaultPlan] = None,
        cache=None,
        worker_id: Optional[str] = None,
        on_ready: Optional[Callable[[int], None]] = None,
        quiet: bool = False,
    ):
        self.host = host
        self.port = port
        self.isolation = isolation
        self.once = once
        self.chaos = chaos
        self.cache = cache
        self.worker_id = worker_id or "w-" + uuid.uuid4().hex[:8]
        self.on_ready = on_ready
        self.quiet = quiet
        self.hostname = socket.gethostname()
        self.pid = os.getpid()
        self._stop = threading.Event()
        self._listener: Optional[socket.socket] = None
        self.sessions = 0
        self.jobs_executed = 0
        # Daemon-lifetime chaos state: fault ordinals count across
        # sessions, so a one-shot fault (sever@result:2) fires once and
        # the worker serves clean after the coordinator re-dials.
        self._chaos_counts: Dict[str, int] = {}
        self.chaos_injected: List[str] = []

    # -- lifecycle -----------------------------------------------------

    def stop(self) -> None:
        """Ask the accept loop to exit (tests; SIGINT does the same)."""
        self._stop.set()
        listener = self._listener
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass

    def serve_forever(self) -> int:
        """Bind, announce readiness, and serve sessions until stopped.

        Returns a process exit code; never raises for anything a
        coordinator (or the network) did.
        """
        try:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.host, self.port))
            listener.listen(4)
        except OSError as exc:
            self._say("dist worker failed to bind {}:{}: {}".format(
                self.host, self.port, exc
            ))
            return EXIT_DIST_TRANSPORT
        self._listener = listener
        self.port = listener.getsockname()[1]
        if self.on_ready is not None:
            self.on_ready(self.port)
        self._say(
            "dist worker ready on {}:{} pid={} id={}".format(
                self.host, self.port, self.pid, self.worker_id
            )
        )
        try:
            while not self._stop.is_set():
                listener.settimeout(0.25)
                try:
                    sock, _addr = listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break  # listener closed by stop()
                self.sessions += 1
                ended_clean = self._session(sock)
                if self.once and ended_clean:
                    return 0
        except KeyboardInterrupt:
            pass
        finally:
            try:
                listener.close()
            except OSError:
                pass
        return 0

    # -- one coordinator session ---------------------------------------

    def _session(self, sock: socket.socket) -> bool:
        """Serve one coordinator connection; ``True`` when it ended
        with a clean ``bye`` (vs a lost/severed connection)."""
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        if self.chaos is not None:
            conn: FrameConnection = FaultyConnection(
                sock, self.chaos, counts=self._chaos_counts,
                injected=self.chaos_injected,
            )
        else:
            conn = FrameConnection(sock)
        heartbeat_s = 1.0
        try:
            hello = conn.recv(timeout=10.0)
            if hello is None or hello.get("kind") != "hello":
                conn.close()
                return False
            if hello.get("protocol") != protocol.PROTOCOL_VERSION:
                conn.send(
                    {
                        "kind": "error",
                        "detail": "unsupported protocol {!r} (speaking {})".format(
                            hello.get("protocol"), protocol.PROTOCOL_VERSION
                        ),
                    }
                )
                conn.close()
                return False
            heartbeat_s = max(0.05, float(hello.get("heartbeat_ms", 1000)) / 1000.0)
            conn.send(
                {
                    "kind": "register",
                    "protocol": protocol.PROTOCOL_VERSION,
                    "worker_id": self.worker_id,
                    "host": self.hostname,
                    "pid": self.pid,
                    "slots": 1,
                    "isolation": self.isolation,
                }
            )
            while not self._stop.is_set():
                frame = conn.recv(timeout=0.5)
                if frame is None:
                    continue
                kind = frame.get("kind")
                if kind == "assign":
                    self._handle_assign(conn, frame, heartbeat_s)
                elif kind == "ping":
                    conn.send({"kind": "pong"})
                elif kind == "bye":
                    conn.close()
                    return True
                # unknown kinds are skipped: future coordinators may
                # send informational frames old workers ignore.
            conn.close()
            return True
        except (ConnectionClosed, ProtocolError):
            conn.close()
            return False

    # -- one assignment ------------------------------------------------

    def _handle_assign(
        self, conn: FrameConnection, frame: Dict[str, Any], heartbeat_s: float
    ) -> None:
        job = Job.from_dict(frame["job"])
        epoch = int(frame.get("epoch", 0))
        attempt = int(frame.get("attempt", 0))
        store_entry(self.cache, job, frame.get("cache_entry"))
        stop_beats = threading.Event()
        beats = threading.Thread(
            target=self._heartbeat_loop,
            args=(conn, job.job_id, epoch, heartbeat_s, stop_beats),
            daemon=True,
        )
        beats.start()
        try:
            payload, timed_out = self._execute(job, attempt)
        finally:
            stop_beats.set()
            beats.join(timeout=2.0)
        self.jobs_executed += 1
        entry = None if timed_out else cacheable_entry(job, payload)
        if entry is not None:
            store_entry(self.cache, job, entry)
        conn.send(
            {
                "kind": "result",
                "job_id": job.job_id,
                "epoch": epoch,
                "attempt": attempt,
                "payload": payload,
                "timed_out": timed_out,
                "worker_id": self.worker_id,
                "host": self.hostname,
                "pid": self.pid,
                "cache_entry": entry,
            }
        )

    def _heartbeat_loop(
        self,
        conn: FrameConnection,
        job_id: str,
        epoch: int,
        heartbeat_s: float,
        stop: threading.Event,
    ) -> None:
        while not stop.wait(heartbeat_s):
            try:
                conn.send(
                    {
                        "kind": "heartbeat",
                        "job_id": job_id,
                        "epoch": epoch,
                        "worker_id": self.worker_id,
                    }
                )
            except (ConnectionClosed, ProtocolError):
                return  # session is gone; the executor will notice on send

    def _execute(self, job: Job, attempt: int) -> Tuple[Optional[Dict[str, Any]], bool]:
        """One attempt: ``(payload_or_None, timed_out)``.

        A warm hit in the worker's own pool (possibly just seeded by
        the coordinator) short-circuits execution entirely.
        """
        hit = lookup_entry(self.cache, job)
        if hit is not None:
            payload = dict(hit)
            payload["cached"] = True
            return payload, False
        if not self.isolation:
            return execute_job(job), False
        return self._run_isolated(job.to_dict(), attempt)

    def _run_isolated(
        self, body: Dict[str, Any], attempt: int
    ) -> Tuple[Optional[Dict[str, Any]], bool]:
        """Spawn-isolated attempt with a watchdog, mirroring the local
        supervisor: a crashed subprocess yields ``(None, False)``, an
        overdue one is killed and yields ``(None, True)``."""
        import multiprocessing

        from repro.runner.worker import worker_main

        ctx = multiprocessing.get_context("spawn")
        queue = ctx.SimpleQueue()
        process = ctx.Process(target=worker_main, args=(body, attempt, queue), daemon=True)
        process.start()
        watchdog_s = float(body.get("params", {}).get("timeout", 30.0))
        deadline = time.monotonic() + watchdog_s
        while process.is_alive() and time.monotonic() < deadline:
            time.sleep(0.01)
        timed_out = process.is_alive()
        if timed_out:
            process.terminate()
            process.join(_KILL_GRACE_S)
            if process.is_alive():
                process.kill()
                process.join(1.0)
        else:
            process.join()
        payload = None
        if not timed_out:
            try:
                payload = None if queue.empty() else queue.get()
            except Exception:  # torn pipe write from a dying subprocess
                payload = None
        if hasattr(queue, "close"):
            queue.close()
        return payload, timed_out

    def _say(self, line: str) -> None:
        if not self.quiet:
            print(line, flush=True)


def run_worker_process(
    ready_queue, host: str = "127.0.0.1", isolation: bool = False, once: bool = False
) -> None:
    """Entry point for spawning a dist worker as a child *process*
    (the bench harness and tests): binds an ephemeral port and reports
    it back over ``ready_queue``."""
    worker = DistWorker(
        host=host,
        port=0,
        isolation=isolation,
        once=once,
        on_ready=ready_queue.put,
        quiet=True,
    )
    worker.serve_forever()
