"""The multi-host campaign coordinator behind ``repro run --dist``.

Scheduling model: the coordinator owns the job list, the checkpoint
ledger, and the truth about which attempt counts; workers own nothing
but the attempt in flight.  Jobs are handed out under **time-bounded
leases** (:mod:`repro.dist.leases`) renewed by worker heartbeats, so
every failure mode reduces to one of two observable events:

- **connection lost** (crash, kill -9, severed socket) — the reader
  thread sees EOF/torn-frame; every lease the worker held is reclaimed
  immediately, classified ``crash`` in the attempt taxonomy, and the
  jobs are reassigned;
- **lease expired** (hung host, network partition — the connection
  *looks* alive but heartbeats stopped) — the watchdog reclaims the
  lease, classifies the attempt ``timeout``, drops the suspect
  connection, and reassigns.

Reassignment bumps the job's **epoch**; a partitioned worker that
later delivers the stale attempt's result is detected by its old epoch
and the result is discarded — counted, never merged — so the ledger
records exactly one terminal outcome per job no matter how many hosts
raced on it.  Worker *identity* (host/pid/worker id) rides on every
attempt entry, making the ledger a cross-host audit trail.

Failures the job itself causes (``malformed``/``budget``/``verdict``/
``error`` payload classifications, and crash/timeout of the worker's
*subprocess* with the host still healthy) follow the local
supervisor's retry semantics exactly: capped-jitter
:class:`~repro.runner.supervisor.RetryPolicy` backoff, 4x budget
escalation, quarantine of deterministic failures.  Host loss is
tracked separately (``max_reassigns``) so a kill -9'd worker host
costs reassignment latency, never a job.

Per-host **circuit breakers** (:mod:`repro.serve.resilience`) stop the
coordinator from feeding jobs to a host that keeps eating them; dead
hosts are re-dialed with backoff (a severed connection to a live
worker heals).  If every host is lost and reconnection is exhausted,
the coordinator **falls back to the local pool** for whatever is left
— ``repro run --dist`` never strands a campaign, it just stops being
fast.  Verdicts are byte-identical to a single-host run throughout:
jobs are pure functions of (system, claim, budget), so distribution
may lose time, never truth.
"""

from __future__ import annotations

import queue as _queue_mod
import socket
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.dist import protocol
from repro.dist.cache_sync import cacheable_entry, lookup_entry, store_entry
from repro.dist.leases import Lease, LeaseTable
from repro.dist.protocol import ConnectionClosed, FrameConnection, ProtocolError
from repro.errors import ReproError
from repro.obs import instrument as _telemetry
from repro.obs.instrument import Recorder
from repro.runner.jobs import Job
from repro.runner.ledger import Ledger
from repro.runner.report import TRANSIENT_CLASSES, CampaignReport, JobOutcome
from repro.runner.supervisor import RetryPolicy, classify_payload, payload_detail
from repro.serve.resilience import BreakerBoard

__all__ = ["DistConfig", "DistCoordinator", "parse_hosts"]


def parse_hosts(spec: str) -> List[Tuple[str, int]]:
    """Parse ``host:port,host:port,...`` into address tuples.

    Raises :class:`ReproError` on anything malformed — a typo'd worker
    list must exit 2, not silently shrink the fleet.
    """
    hosts: List[Tuple[str, int]] = []
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        host, sep, port_text = chunk.rpartition(":")
        if not sep or not host:
            raise ReproError(
                "malformed worker address {!r}; expected host:port".format(chunk)
            )
        try:
            port = int(port_text)
        except ValueError:
            raise ReproError(
                "worker address {!r}: port {!r} is not an integer".format(
                    chunk, port_text
                )
            )
        if not (1 <= port <= 65535):
            raise ReproError(
                "worker address {!r}: port {} out of range 1-65535".format(chunk, port)
            )
        hosts.append((host, port))
    if not hosts:
        raise ReproError("empty worker address list")
    return hosts


@dataclass
class DistConfig:
    """Knobs of one distributed campaign."""

    hosts: List[Tuple[str, int]]
    lease_ms: int = 5000
    heartbeat_ms: int = 1000
    timeout: float = 30.0
    connect_timeout: float = 3.0
    reconnect_attempts: int = 3
    max_reassigns: Optional[int] = None  # default: 3 * hosts + 3
    fallback_workers: int = 2

    def __post_init__(self):
        if self.lease_ms <= 0 or self.heartbeat_ms <= 0:
            raise ReproError("lease_ms and heartbeat_ms must be positive")
        if self.heartbeat_ms >= self.lease_ms:
            raise ReproError(
                "heartbeat_ms ({}) must be shorter than lease_ms ({}) — a "
                "lease that expires between beats reclaims healthy jobs".format(
                    self.heartbeat_ms, self.lease_ms
                )
            )
        if self.max_reassigns is None:
            self.max_reassigns = 3 * len(self.hosts) + 3


@dataclass
class _DistJobState:
    """Coordinator-side bookkeeping for one job across hosts."""

    job: Job
    attempt: int = 0
    retries: int = 0
    reassigns: int = 0
    budget_scale: int = 1
    eligible_at: float = 0.0
    classifications: List[str] = field(default_factory=list)
    wall: float = 0.0
    started_at: Optional[float] = None


class _RemoteWorker:
    """One worker address as the coordinator sees it."""

    CONNECTING, READY, BUSY, DEAD, GONE = "connecting", "ready", "busy", "dead", "gone"

    def __init__(self, address: Tuple[str, int]):
        self.address = address
        self.label = "{}:{}".format(*address)
        self.state = _RemoteWorker.DEAD
        self.conn: Optional[FrameConnection] = None
        self.worker_id: Optional[str] = None
        self.host: Optional[str] = None
        self.pid: Optional[int] = None
        self.dials = 0
        self.next_dial_at = 0.0
        self.reader: Optional[threading.Thread] = None

    def identity(self) -> Dict[str, Any]:
        return {
            "worker": self.worker_id,
            "worker_host": self.host,
            "worker_pid": self.pid,
            "address": self.label,
        }


class DistCoordinator:
    """Drives a job list to a complete :class:`CampaignReport` over a
    fleet of remote workers; never raises for anything a worker, a
    socket, or a partition did."""

    def __init__(
        self,
        jobs: List[Job],
        config: DistConfig,
        retry: Optional[RetryPolicy] = None,
        ledger: Optional[Ledger] = None,
        campaign_id: Optional[str] = None,
        prior_outcomes: Optional[Dict[str, JobOutcome]] = None,
        write_header: bool = True,
        recorder: Optional[Recorder] = None,
        cache=None,
        engine: Optional[str] = None,
        engine_workers: Optional[int] = None,
        job_cache: Optional[bool] = None,
        local_fallback: bool = True,
        breakers: Optional[BreakerBoard] = None,
        poll_interval: float = 0.02,
    ):
        self.jobs = list(jobs)
        self.config = config
        self.retry = retry if retry is not None else RetryPolicy()
        self.ledger = ledger
        self.campaign_id = campaign_id or uuid.uuid4().hex[:12]
        self.prior_outcomes = dict(prior_outcomes or {})
        self.write_header = write_header
        self.cache = cache
        self.engine = engine
        self.engine_workers = engine_workers
        self.job_cache = job_cache
        self.local_fallback = local_fallback
        self.poll_interval = poll_interval
        self.recorder = recorder if recorder is not None else Recorder(
            name="dist." + self.campaign_id, max_events=0
        )
        self.breakers = breakers if breakers is not None else BreakerBoard(
            failure_threshold=3, cooldown_s=max(2.0, config.lease_ms / 1000.0)
        )
        self.leases = LeaseTable()
        self._events: "_queue_mod.Queue" = _queue_mod.Queue()
        self._workers = [_RemoteWorker(addr) for addr in config.hosts]
        self._pending: List[_DistJobState] = []
        self._assigned: Dict[str, _DistJobState] = {}
        self._settled: Dict[str, JobOutcome] = {}
        self.degraded = False

    # -- connection management -----------------------------------------

    def _dial(self, worker: _RemoteWorker) -> bool:
        """Connect + handshake one worker; synchronous, bounded by
        ``connect_timeout``."""
        worker.dials += 1
        try:
            sock = socket.create_connection(
                worker.address, timeout=self.config.connect_timeout
            )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn = FrameConnection(sock)
            conn.send(
                {
                    "kind": "hello",
                    "protocol": protocol.PROTOCOL_VERSION,
                    "campaign_id": self.campaign_id,
                    "lease_ms": self.config.lease_ms,
                    "heartbeat_ms": self.config.heartbeat_ms,
                }
            )
            deadline = time.monotonic() + self.config.connect_timeout
            register = None
            while time.monotonic() < deadline:
                register = conn.recv(timeout=self.config.connect_timeout)
                if register is not None:
                    break
            if (
                register is None
                or register.get("kind") != "register"
                or register.get("protocol") != protocol.PROTOCOL_VERSION
            ):
                conn.close()
                raise ProtocolError(
                    "worker {} did not register (got {!r})".format(
                        worker.label, None if register is None else register.get("kind")
                    )
                )
        except (OSError, ProtocolError) as exc:
            self.recorder.incr("dist.dial_failures")
            worker.state = _RemoteWorker.DEAD
            worker.next_dial_at = time.monotonic() + min(
                2.0, 0.2 * (2 ** min(worker.dials, 4))
            )
            self._log("worker {} unreachable: {}".format(worker.label, exc))
            return False
        worker.conn = conn
        worker.worker_id = register.get("worker_id", worker.label)
        worker.host = register.get("host")
        worker.pid = register.get("pid")
        worker.state = _RemoteWorker.READY
        worker.reader = threading.Thread(
            target=self._reader_loop, args=(worker, conn), daemon=True
        )
        worker.reader.start()
        self.recorder.incr("dist.connects")
        return True

    def _reader_loop(self, worker: _RemoteWorker, conn: FrameConnection) -> None:
        """Pump one connection's inbound frames into the event queue;
        a closed/torn connection becomes a ``lost`` event."""
        while True:
            try:
                frame = conn.recv(timeout=0.25)
            except (ConnectionClosed, ProtocolError) as exc:
                self._events.put(("lost", worker, str(exc)))
                return
            if frame is not None:
                self._events.put(("frame", worker, frame))

    def _drop_worker(self, worker: _RemoteWorker, why: str, reclass: str) -> None:
        """Lose a worker: reclaim every lease it held (classified
        ``reclass``: crash for a dead connection, timeout for a lapsed
        lease) and schedule a re-dial."""
        if worker.state == _RemoteWorker.GONE:
            return
        conn, worker.conn = worker.conn, None
        if conn is not None:
            conn.close()
        held = self.leases.held_by(worker.worker_id or worker.label)
        exhausted = worker.dials > self.config.reconnect_attempts
        worker.state = _RemoteWorker.GONE if exhausted else _RemoteWorker.DEAD
        worker.next_dial_at = time.monotonic() + min(
            2.0, 0.2 * (2 ** min(worker.dials, 4))
        )
        self.recorder.incr("dist.workers_lost")
        self._log("worker {} lost ({}); {} lease(s) reclaimed".format(
            worker.label, why, len(held)
        ))
        for lease in held:
            self._reclaim(lease, worker, reclass, why)

    # -- lease lifecycle -----------------------------------------------

    def _reclaim(
        self, lease: Lease, worker: _RemoteWorker, classification: str, why: str
    ) -> None:
        """One reclaimed lease: ledger the infrastructure attempt and
        requeue (or, past ``max_reassigns``, settle) the job."""
        self.leases.release(lease.job_id)
        state = self._assigned.pop(lease.job_id, None)
        if state is None:
            return
        if state.started_at is not None:
            state.wall += time.monotonic() - state.started_at
            state.started_at = None
        state.classifications.append(classification)
        state.reassigns += 1
        self.recorder.incr("dist.reassigned")
        self.breakers.breaker(worker.label).record(classification)
        detail = "worker {} {}: {}".format(worker.label, classification, why)
        if self.ledger is not None:
            self.ledger.attempt(
                lease.job_id,
                state.attempt,
                classification,
                detail,
                budget_scale=state.budget_scale,
                extra=dict(worker.identity(), epoch=lease.epoch),
            )
        state.attempt += 1
        if state.reassigns > self.config.max_reassigns:
            # This job has out-lived every allowance; record the loss
            # honestly rather than looping forever.
            outcome = JobOutcome(
                job_id=state.job.job_id,
                kind=state.job.kind,
                system=state.job.system,
                status=classification,
                ok=False,
                attempts=state.attempt,
                retries=state.retries,
                detail="exhausted {} reassignments: {}".format(
                    self.config.max_reassigns, detail
                ),
                wall=state.wall,
                conclusive=True,
                expect_failure=state.job.expect_failure,
                classifications=list(state.classifications),
            )
            self._settle_outcome(outcome)
            return
        state.eligible_at = time.monotonic() + self.retry.delay(
            min(state.reassigns - 1, 4)
        )
        self._pending.append(state)

    def _expire_leases(self, now: float) -> None:
        for lease in self.leases.expired(now):
            self.recorder.incr("dist.lease_expired")
            worker = self._worker_by_id(lease.worker_id)
            if worker is not None:
                # The host is suspect (hung or partitioned): drop the
                # whole connection; its other state is reclaimed too.
                self._drop_worker(
                    worker,
                    "lease on {} expired without a heartbeat".format(lease.job_id),
                    "timeout",
                )
            else:
                self._reclaim(
                    lease,
                    _RemoteWorker(("?", 0)),
                    "timeout",
                    "lease expired; worker unknown",
                )

    def _worker_by_id(self, worker_id: str) -> Optional[_RemoteWorker]:
        for worker in self._workers:
            if worker.worker_id == worker_id or worker.label == worker_id:
                return worker
        return None

    # -- assignment ----------------------------------------------------

    def _job_body(self, state: _DistJobState) -> Dict[str, Any]:
        body = state.job.to_dict()
        params = dict(body["params"])
        params["budget_scale"] = state.budget_scale
        params["timeout"] = self.config.timeout
        if self.engine is not None:
            params["engine"] = self.engine
            if self.engine_workers is not None:
                params["workers"] = self.engine_workers
        if self.job_cache is not None:
            params["cache"] = self.job_cache
        body["params"] = params
        return body

    def _assign(self, worker: _RemoteWorker, state: _DistJobState) -> bool:
        now = time.monotonic()
        lease = self.leases.grant(
            state.job.job_id,
            worker.worker_id or worker.label,
            self.config.lease_ms / 1000.0,
            now,
        )
        state.started_at = now
        frame = {
            "kind": "assign",
            "job": self._job_body(state),
            "epoch": lease.epoch,
            "attempt": state.attempt,
            "cache_entry": lookup_entry(self.cache, state.job),
        }
        if frame["cache_entry"] is not None:
            self.recorder.incr("dist.cache_pushed")
        try:
            worker.conn.send(frame)
        except (ConnectionClosed, ProtocolError) as exc:
            # The grant is rolled back before anyone saw the epoch...
            # except the epoch counter itself, which only ever grows.
            self.leases.release(state.job.job_id)
            state.started_at = None
            self._pending.append(state)
            self._drop_worker(worker, "assign failed: {}".format(exc), "crash")
            return False
        self._assigned[state.job.job_id] = state
        worker.state = _RemoteWorker.BUSY
        self.recorder.incr("dist.assigned")
        return True

    # -- inbound frames ------------------------------------------------

    def _on_frame(self, worker: _RemoteWorker, frame: Dict[str, Any]) -> None:
        kind = frame.get("kind")
        if kind == "heartbeat":
            self.recorder.incr("dist.heartbeats")
            renewed = self.leases.renew(
                str(frame.get("job_id")),
                str(frame.get("worker_id")),
                int(frame.get("epoch", -1)),
                time.monotonic(),
            )
            if not renewed:
                self.recorder.incr("dist.stale_heartbeats")
        elif kind == "result":
            self._on_result(worker, frame)
        elif kind == "pong":
            pass
        # unknown kinds skipped (forward compatibility)

    def _on_result(self, worker: _RemoteWorker, frame: Dict[str, Any]) -> None:
        """The idempotent ledger merge: admit a result only when its
        (job, epoch, worker) triple is the *latest grant* of a job that
        has not already settled — everything else is a stale or
        duplicate delivery from a raced or partitioned worker, counted
        and discarded."""
        job_id = str(frame.get("job_id"))
        epoch = int(frame.get("epoch", -1))
        sender = str(frame.get("worker_id"))
        if job_id in self._settled or not self.leases.is_current(
            job_id, epoch, sender
        ):
            self.recorder.incr("dist.stale_results")
            self._log(
                "discarded stale result for {} (epoch {} from {}; current epoch {})".format(
                    job_id, epoch, sender, self.leases.epoch(job_id)
                )
            )
            return
        self.leases.release(job_id)
        state = self._assigned.pop(job_id, None)
        if state is None:
            self.recorder.incr("dist.stale_results")
            return
        if worker.state == _RemoteWorker.BUSY:
            worker.state = _RemoteWorker.READY
        if state.started_at is not None:
            state.wall += time.monotonic() - state.started_at
            state.started_at = None
        self.recorder.incr("dist.results")
        payload = frame.get("payload")
        if frame.get("timed_out"):
            classification = "timeout"
            detail = "worker {} watchdog killed the attempt".format(worker.label)
        elif payload is None:
            classification = "crash"
            detail = "worker {} subprocess died without a result".format(worker.label)
        else:
            classification = classify_payload(job_id, payload)
            detail = payload_detail(payload)
        if isinstance(payload, dict) and isinstance(payload.get("telemetry"), dict):
            self.recorder.merge(payload["telemetry"])
        if store_entry(self.cache, state.job, frame.get("cache_entry")):
            self.recorder.incr("dist.cache_pulled")
        self.breakers.breaker(worker.label).record(classification)
        self._settle_attempt(state, classification, detail, payload, worker, epoch)

    # -- settling (the supervisor's retry semantics) --------------------

    def _settle_attempt(
        self,
        state: _DistJobState,
        classification: str,
        detail: str,
        payload,
        worker: _RemoteWorker,
        epoch: int,
    ) -> None:
        state.classifications.append(classification)
        retryable = (
            classification in TRANSIENT_CLASSES
            and state.retries < self.retry.max_retries
        )
        backoff = self.retry.delay(state.attempt) if retryable else None
        if self.ledger is not None:
            self.ledger.attempt(
                state.job.job_id,
                state.attempt,
                classification,
                detail,
                backoff=backoff,
                budget_scale=state.budget_scale,
                extra=dict(worker.identity(), epoch=epoch),
            )
        counter = {
            "crash": "dist.crashes",
            "timeout": "dist.timeouts",
            "malformed": "dist.malformed",
            "budget": "dist.budget_cuts",
        }.get(classification)
        if counter is not None:
            self.recorder.incr(counter)
        if retryable:
            if classification == "budget":
                state.budget_scale *= 4
                self.recorder.incr("dist.budget_escalations")
            state.retries += 1
            state.attempt += 1
            state.eligible_at = time.monotonic() + backoff
            self.recorder.incr("dist.retries")
            self._pending.append(state)
            return
        self._terminal(state, classification, detail, payload)

    def _terminal(
        self, state: _DistJobState, classification: str, detail: str, payload
    ) -> None:
        job = state.job
        conclusive = True
        error = payload.get("error") if isinstance(payload, dict) else None
        if classification == "ok":
            if job.expect_failure:
                status, ok = "unexpected-pass", False
                detail = detail or "expected this system to fail; it passed"
            else:
                status, ok = "ok", True
        elif classification == "verdict":
            if job.expect_failure:
                status, ok = "expected-failure", True
            else:
                status, ok = "verdict", False
        elif classification == "budget":
            status = "budget"
            ok = bool(isinstance(payload, dict) and payload.get("ok"))
            conclusive = False
        else:
            status, ok = classification, False
        if not ok:
            self.recorder.incr("dist.failed")
        outcome = JobOutcome(
            job_id=job.job_id,
            kind=job.kind,
            system=job.system,
            status=status,
            ok=ok,
            attempts=state.attempt + 1,
            retries=state.retries,
            detail=detail,
            wall=state.wall,
            conclusive=conclusive,
            expect_failure=job.expect_failure,
            classifications=list(state.classifications),
            error=error,
        )
        self._settle_outcome(outcome)

    def _settle_outcome(self, outcome: JobOutcome) -> None:
        if outcome.job_id in self._settled:
            # Double-settle would be a merge bug; keep the first, loudly.
            self.recorder.incr("dist.duplicate_outcomes")
            return
        self._settled[outcome.job_id] = outcome
        if self.ledger is not None:
            self.ledger.done(outcome)

    # -- the main loop -------------------------------------------------

    def run(self) -> CampaignReport:
        started = time.monotonic()
        self.recorder.incr("dist.jobs", len(self.jobs))
        if self.ledger is not None:
            if self.write_header:
                self.ledger.begin(
                    self.campaign_id,
                    self.jobs,
                    {
                        "dist": True,
                        "hosts": [list(h) for h in self.config.hosts],
                        "lease_ms": self.config.lease_ms,
                        "heartbeat_ms": self.config.heartbeat_ms,
                        "timeout": self.config.timeout,
                        "max_retries": self.retry.max_retries,
                    },
                )
            else:
                self.ledger.resume(
                    self.campaign_id, [job.job_id for job in self.jobs]
                )
        self._pending = [_DistJobState(job=job) for job in self.jobs]
        # Initial fleet: dial every configured host once, in parallel
        # threads so one black-holed address cannot serialise the rest.
        threads = [
            threading.Thread(target=self._dial, args=(w,), daemon=True)
            for w in self._workers
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(self.config.connect_timeout + 1.0)
        connected = [w for w in self._workers if w.state == _RemoteWorker.READY]
        self.recorder.gauge("dist.workers_connected", len(connected))
        if not connected:
            return self._degrade(started, reason="no dist workers reachable")
        interrupted = False
        try:
            while self._pending or self._assigned:
                now = time.monotonic()
                self._expire_leases(now)
                self._redial_due(now)
                if not self._live_workers():
                    if not self._pending and not self._assigned:
                        break
                    # Every host is gone: pull back what is still
                    # assigned (leases die with their workers above),
                    # then finish locally.
                    return self._finish_locally(started)
                self._assign_eligible(now)
                self._drain_events()
        except KeyboardInterrupt:
            interrupted = True
        self._shutdown_workers()
        return self._report(started, interrupted)

    # -- loop pieces ---------------------------------------------------

    def _live_workers(self) -> List[_RemoteWorker]:
        return [
            w
            for w in self._workers
            if w.state in (_RemoteWorker.READY, _RemoteWorker.BUSY, _RemoteWorker.DEAD)
        ]

    def _redial_due(self, now: float) -> None:
        for worker in self._workers:
            if (
                worker.state == _RemoteWorker.DEAD
                and now >= worker.next_dial_at
                and worker.dials <= self.config.reconnect_attempts
            ):
                if self._dial(worker):
                    self.recorder.incr("dist.reconnects")
                elif worker.dials > self.config.reconnect_attempts:
                    worker.state = _RemoteWorker.GONE

    def _assign_eligible(self, now: float) -> None:
        for worker in self._workers:
            if worker.state != _RemoteWorker.READY or not self._pending:
                continue
            breaker = self.breakers.breaker(worker.label)
            if not breaker.allow():
                self.recorder.incr("dist.breaker_rejections")
                continue
            index = next(
                (
                    i
                    for i, state in enumerate(self._pending)
                    if state.eligible_at <= now
                ),
                None,
            )
            if index is None:
                continue
            self._assign(worker, self._pending.pop(index))

    def _drain_events(self) -> None:
        try:
            event = self._events.get(timeout=self.poll_interval)
        except _queue_mod.Empty:
            return
        while True:
            kind, worker, body = event
            if kind == "frame":
                self._on_frame(worker, body)
            elif kind == "lost":
                self._drop_worker(worker, body, "crash")
            try:
                event = self._events.get_nowait()
            except _queue_mod.Empty:
                return

    def _shutdown_workers(self) -> None:
        for worker in self._workers:
            if worker.conn is not None:
                try:
                    worker.conn.send({"kind": "bye"})
                except (ConnectionClosed, ProtocolError):
                    pass
                worker.conn.close()
                worker.conn = None

    # -- degraded paths ------------------------------------------------

    def _local_supervisor(self, jobs: List[Job], write_header: bool):
        from repro.runner.supervisor import Supervisor

        return Supervisor(
            jobs,
            workers=self.config.fallback_workers,
            timeout=self.config.timeout,
            retry=RetryPolicy(max_retries=self.retry.max_retries),
            ledger=self.ledger,
            campaign_id=self.campaign_id,
            write_header=write_header,
            recorder=self.recorder,
            engine=self.engine,
            engine_workers=self.engine_workers,
            cache=self.job_cache,
        )

    def _degrade(self, started: float, reason: str) -> CampaignReport:
        """No fleet at all: run the whole campaign on the local pool —
        ``--dist`` is an accelerator, never a precondition."""
        self.degraded = True
        self.recorder.incr("dist.degraded")
        self._log("{}; falling back to the local worker pool".format(reason))
        if not self.local_fallback:
            report = CampaignReport(
                campaign_id=self.campaign_id,
                outcomes=list(self.prior_outcomes.values()),
                interrupted=True,
                wall=time.monotonic() - started,
            )
            report.telemetry = self.recorder.snapshot()
            return report
        supervisor = self._local_supervisor(
            [s.job for s in self._pending], write_header=False
        )
        supervisor.prior_outcomes = dict(self.prior_outcomes)
        report = supervisor.run()
        report.wall = time.monotonic() - started
        return report

    def _finish_locally(self, started: float) -> CampaignReport:
        """Every host died mid-campaign: finish the remaining jobs on
        the local pool and fold the two halves into one report."""
        self.degraded = True
        self.recorder.incr("dist.degraded")
        remaining = [s.job for s in self._pending] + [
            s.job for s in self._assigned.values()
        ]
        self._pending = []
        self._assigned.clear()
        self._log(
            "all dist workers lost; finishing {} job(s) locally".format(len(remaining))
        )
        if remaining and self.local_fallback:
            supervisor = self._local_supervisor(remaining, write_header=False)
            local = supervisor.run()
            for outcome in local.outcomes:
                self._settle_outcome(outcome)
        return self._report(started, interrupted=bool(remaining) and not self.local_fallback)

    # -- reporting -----------------------------------------------------

    def _report(self, started: float, interrupted: bool) -> CampaignReport:
        outcomes = list(self.prior_outcomes.values()) + [
            o
            for o in self._settled.values()
            if o.job_id not in self.prior_outcomes
        ]
        report = CampaignReport(
            campaign_id=self.campaign_id,
            outcomes=outcomes,
            interrupted=interrupted or bool(self._pending or self._assigned),
            wall=time.monotonic() - started,
        )
        for outcome in report.outcomes:
            self.recorder.merge(
                {
                    "timers": {
                        "dist.job." + outcome.job_id: {
                            "total_s": outcome.wall,
                            "calls": 1,
                        }
                    }
                }
            )
        report.telemetry = self.recorder.snapshot()
        parent = _telemetry.active()
        if parent is not None and parent is not self.recorder:
            parent.merge(self.recorder)
        if self.ledger is not None:
            self.ledger.end(
                {
                    "ok": report.ok,
                    "interrupted": report.interrupted,
                    "jobs": len(report.outcomes),
                    "retries": report.total_retries(),
                    "counts": report.counts(),
                    "dist": True,
                    "degraded": self.degraded,
                }
            )
        return report

    def _log(self, line: str) -> None:
        import sys

        print("dist: {}".format(line), file=sys.stderr)
