"""The framed wire format between coordinator and dist workers.

Frames are length-prefixed JSON: a 4-byte big-endian byte count, then
that many bytes of UTF-8 JSON.  Length prefixing (rather than
newline-delimited JSON) makes torn writes *detectable*: a reader that
gets EOF mid-frame knows the frame is torn and treats the connection as
lost, instead of parsing half a message as a smaller one.  The format
deliberately carries only plain JSON — job bodies are
``Job.to_dict()`` output and result payloads are ``execute_job``
payloads, both already plain — so the transport never needs the tagged
encoder.

Message vocabulary (the ``kind`` field):

- ``hello``      — coordinator → worker: campaign id, protocol version,
  lease/heartbeat intervals;
- ``register``   — worker → coordinator: worker id, host, pid, slots;
- ``assign``     — coordinator → worker: one job body, its lease epoch
  and attempt number, optionally a warm verdict-cache entry;
- ``heartbeat``  — worker → coordinator while executing: renews the
  job's lease (job id + epoch, so a stale worker's heartbeats are
  recognisably stale);
- ``result``     — worker → coordinator: the attempt's payload (or the
  crash/timeout evidence), stamped with the lease epoch and worker
  identity, optionally a cacheable verdict entry;
- ``ping``/``pong`` — liveness probes;
- ``bye``        — either side: clean shutdown of the session.

Both sides reject a frame above :data:`MAX_FRAME_BYTES` (a corrupted
length prefix must not allocate gigabytes) and refuse to speak to a
peer announcing an unknown :data:`PROTOCOL_VERSION`.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
from typing import Any, Dict, Optional

from repro.errors import ReproError

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "ConnectionClosed",
    "encode_frame",
    "decode_body",
    "FrameConnection",
]

#: Version both sides announce in their opening message; a mismatch is
#: refused up front rather than misparsed mid-campaign.
PROTOCOL_VERSION = 1

#: Hard cap on one frame's body.  Result payloads are a few KB; a
#: length prefix beyond this means a corrupted or hostile stream.
MAX_FRAME_BYTES = 32 * 1024 * 1024

_HEADER = struct.Struct(">I")


class ProtocolError(ReproError):
    """The peer spoke something that is not this protocol."""


class ConnectionClosed(ProtocolError):
    """The connection ended — cleanly at a frame boundary, torn
    mid-frame, or with a transport error; ``detail`` says which."""

    def __init__(self, detail: str = "connection closed"):
        super().__init__(detail)
        self.detail = detail


def encode_frame(body: Dict[str, Any]) -> bytes:
    """One wire frame: 4-byte length prefix + UTF-8 JSON body."""
    if not isinstance(body, dict) or "kind" not in body:
        raise ProtocolError(
            "a frame body must be a dict with a 'kind', got {!r}".format(body)
        )
    try:
        raw = json.dumps(body, sort_keys=True).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError("frame body is not JSON-serialisable: {}".format(exc))
    if len(raw) > MAX_FRAME_BYTES:
        raise ProtocolError(
            "frame of {} bytes exceeds the {} byte cap".format(
                len(raw), MAX_FRAME_BYTES
            )
        )
    return _HEADER.pack(len(raw)) + raw


def decode_body(raw: bytes) -> Dict[str, Any]:
    """Parse one frame body; anything but a ``kind``-bearing JSON dict
    is a protocol violation."""
    try:
        body = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError("frame body is not valid JSON: {}".format(exc))
    if not isinstance(body, dict) or "kind" not in body:
        raise ProtocolError(
            "frame body is not a message dict: {!r}".format(body)[:200]
        )
    return body


class FrameConnection:
    """Framed messages over one TCP socket.

    - :meth:`send` is thread-safe (a worker's heartbeat thread and its
    result path share the connection) and never interleaves frames;
    - :meth:`recv` buffers partial frames across calls, so a slow or
    fault-injected peer delivering one byte at a time still yields
    whole frames; ``None`` means the ``timeout`` elapsed with no
    complete frame (poll again), :class:`ConnectionClosed` means the
    stream ended — cleanly between frames or torn inside one.
    """

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self._send_lock = threading.Lock()
        self._buf = b""
        self._closed = False
        self.frames_sent = 0
        self.frames_received = 0
        try:
            name = sock.getpeername()
            if isinstance(name, tuple) and len(name) >= 2:
                self.peer = "{}:{}".format(name[0], name[1])
            else:  # AF_UNIX (socketpair in tests) has no host:port
                self.peer = str(name) or "local"
        except OSError:
            self.peer = "?"

    # -- sending -------------------------------------------------------

    def send(self, body: Dict[str, Any]) -> None:
        raw = encode_frame(body)
        with self._send_lock:
            if self._closed:
                raise ConnectionClosed("send on a closed connection")
            try:
                self.sock.sendall(raw)
            except OSError as exc:
                self._closed = True
                raise ConnectionClosed("send failed: {}".format(exc))
            self.frames_sent += 1

    # -- receiving -----------------------------------------------------

    def recv(self, timeout: Optional[float] = None) -> Optional[Dict[str, Any]]:
        """The next frame body, or ``None`` when ``timeout`` elapsed.

        Raises :class:`ConnectionClosed` on EOF (``torn frame`` detail
        when EOF landed inside a frame) and :class:`ProtocolError` on a
        frame that violates the format (oversized, non-JSON).
        """
        if self._closed:
            raise ConnectionClosed("recv on a closed connection")
        try:
            self.sock.settimeout(timeout)
        except OSError:  # closed concurrently by another thread
            self._closed = True
            raise ConnectionClosed("recv on a closed connection")
        while True:
            if len(self._buf) >= _HEADER.size:
                (length,) = _HEADER.unpack(self._buf[: _HEADER.size])
                if length > MAX_FRAME_BYTES:
                    self._closed = True
                    raise ProtocolError(
                        "peer announced a {} byte frame (cap {})".format(
                            length, MAX_FRAME_BYTES
                        )
                    )
                if len(self._buf) >= _HEADER.size + length:
                    raw = self._buf[_HEADER.size : _HEADER.size + length]
                    self._buf = self._buf[_HEADER.size + length :]
                    self.frames_received += 1
                    return decode_body(raw)
            try:
                chunk = self.sock.recv(65536)
            except socket.timeout:
                return None
            except OSError as exc:
                self._closed = True
                raise ConnectionClosed("recv failed: {}".format(exc))
            if not chunk:
                self._closed = True
                if self._buf:
                    raise ConnectionClosed(
                        "torn frame: EOF with {} buffered bytes".format(
                            len(self._buf)
                        )
                    )
                raise ConnectionClosed("peer closed the connection")
            self._buf += chunk

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        self._closed = True
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass

    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "FrameConnection":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
