"""The differential proof-method fuzzer.

Each instance is a small random — but *well-formed by construction* —
closed timed automaton (a ring of modular counter cells from
:mod:`repro.testkit`, every bound window anchored at or above 1/2 so
grid exploration cannot go Zeno) plus a claim about the anchor cell's
fire-to-fire gap.  The claim's ground truth is decided by the testkit
invariant the suite already proves: an always-enabled class attains
exactly its bound window between consecutive firings, so a claim holds
iff it contains the anchor window.

Four *independent* engines then decide the same claim:

1. **mapping** — exhaustive grid check of a possibilities mapping into
   the claim's requirements automaton (the paper's Theorem 3.4 route);
2. **semantic** — every grid execution tested directly against the
   claim (no mapping);
3. **zones** — exact continuous-time separation bounds (DBMs);
4. **symbolic** — Fourier–Motzkin feasibility of a violating gap.

Any split between determinate verdicts — or between a verdict and the
constructed truth — is an engine bug: the campaign fails loudly and
serialises the instance as a JSON *reproducer* that rebuilds the exact
automaton and claim with no randomness involved.

Everything is deterministic in ``(seed, index)``: campaigns shard
freely across runner jobs and replay byte-identically.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.gen.names import GEN_VERSION
from repro.testkit import INC, CellSpec, RandomSystem, system_of_cells
from repro.timed.interval import Interval

__all__ = [
    "FuzzInstance",
    "FuzzReport",
    "check_recipe",
    "load_reproducer",
    "run_campaign",
    "sample_recipe",
    "write_reproducer",
]

#: Every window endpoint is a multiple of the exploration grid, so the
#: extremal schedules the oracle needs are grid schedules.
GRID = Fraction(1, 2)

#: Bound-window menus: lower edges start at 1/2 (a zero lower bound
#: admits infinitely many same-instant firings, which the execution-tree
#: engines cannot enumerate), widths keep the horizon small.
_LOWER_MENU = [Fraction(1, 2), Fraction(1), Fraction(3, 2), Fraction(2)]
_WIDTH_MENU = [Fraction(0), Fraction(1, 2), Fraction(1), Fraction(2)]

#: How claims are derived from the anchor window.
_CLAIM_KINDS = ("exact", "widen", "tighten", "shift")

#: Execution-tree cap for the semantic leg; an instance that truncates
#: both exhaustive legs is counted, not compared.
_MAX_EXECUTIONS = 150_000


def _frac(value: Fraction) -> str:
    return "{}/{}".format(value.numerator, value.denominator)


def _unfrac(text: str) -> Fraction:
    return Fraction(text)


# ----------------------------------------------------------------------
# Recipes: plain-JSON instance descriptions
# ----------------------------------------------------------------------


def sample_recipe(rng: random.Random) -> Dict[str, Any]:
    """One random instance recipe.  Plain JSON data — rebuilding the
    system from a recipe involves no randomness, which is what makes
    reproducer artifacts exact."""
    n_cells = rng.choice([1, 1, 2, 2, 2, 3])
    cells = []
    for i in range(n_cells):
        lo = rng.choice(_LOWER_MENU)
        hi = lo + rng.choice(_WIDTH_MENU)
        guard_on = None
        if i > 0 and rng.random() < 0.5:
            guard_on = rng.randrange(i)
        cells.append(
            {
                "index": i,
                "modulus": rng.randint(2, 3),
                "lo": _frac(lo),
                "hi": _frac(hi),
                "guard_on": guard_on,
            }
        )
    anchor = Interval(_unfrac(cells[0]["lo"]), _unfrac(cells[0]["hi"]))
    kind = rng.choice(_CLAIM_KINDS)
    claim = _derive_claim(rng, anchor, kind)
    return {
        "gen_version": GEN_VERSION,
        "cells": cells,
        "claim": {"lo": _frac(claim.lo), "hi": _frac(claim.hi), "kind": kind},
    }


def _derive_claim(rng: random.Random, anchor: Interval, kind: str) -> Interval:
    delta = GRID * rng.randint(1, 3)
    if kind == "widen":
        return Interval(max(Fraction(0), anchor.lo - delta), anchor.hi + delta)
    if kind == "tighten":
        if anchor.hi - anchor.lo >= 2 * GRID:
            return Interval(anchor.lo + GRID, anchor.hi - GRID)
        # Point-ish windows cannot be squeezed from both sides; raise
        # the lower edge past the window instead (still a must-fail).
        return Interval(anchor.lo + GRID, anchor.hi + GRID)
    if kind == "shift":
        return Interval(anchor.lo + delta, anchor.hi + delta)
    return anchor


def build_instance(recipe: Dict[str, Any]) -> Tuple[RandomSystem, Interval, bool]:
    """Rebuild ``(system, claim, expected)`` from a recipe."""
    cells = [
        CellSpec(
            index=cell["index"],
            modulus=cell["modulus"],
            interval=Interval(_unfrac(cell["lo"]), _unfrac(cell["hi"])),
            guard_on=cell["guard_on"],
        )
        for cell in recipe["cells"]
    ]
    system = system_of_cells(cells)
    claim = Interval(_unfrac(recipe["claim"]["lo"]), _unfrac(recipe["claim"]["hi"]))
    anchor = cells[0].interval
    expected = claim.lo <= anchor.lo and anchor.hi <= claim.hi
    return system, claim, expected


# ----------------------------------------------------------------------
# The four oracle legs
# ----------------------------------------------------------------------


def _gap_condition(claim: Interval):
    from repro.timed.conditions import TimingCondition

    return TimingCondition.after_action("GAP", claim, INC(0), {INC(0)})


def _horizon(system: RandomSystem) -> Fraction:
    # Two anchor firings at the latest possible times, plus slack: every
    # violating schedule of the gap claim lives inside this window.
    return 2 * system.cells[0].interval.hi + 2 * GRID


def _mapping_verdict(system: RandomSystem, claim: Interval) -> Tuple[bool, bool]:
    from repro.core.checker import check_mapping_exhaustive
    from repro.core.mappings import InequalityMapping
    from repro.core.time_automaton import time_of_boundmap, time_of_conditions

    algorithm = time_of_boundmap(system.timed)
    requirements = time_of_conditions(
        system.timed.automaton, [_gap_condition(claim)], name="fuzz-claim"
    )
    mapping = InequalityMapping(algorithm, requirements, lambda u, s: True)
    outcome = check_mapping_exhaustive(
        mapping, grid=GRID, horizon=_horizon(system)
    )
    return outcome.ok, False


def _semantic_verdict(system: RandomSystem, claim: Interval) -> Tuple[bool, bool]:
    from repro.core.inclusion import check_semantic_inclusion
    from repro.core.time_automaton import time_of_boundmap

    outcome = check_semantic_inclusion(
        time_of_boundmap(system.timed),
        [_gap_condition(claim)],
        grid=GRID,
        horizon=_horizon(system),
        max_executions=_MAX_EXECUTIONS,
    )
    # A truncated clean sweep is indeterminate; a violation is exact.
    return outcome.ok, outcome.ok and outcome.truncated

def _zone_verdict(system: RandomSystem, claim: Interval) -> Tuple[bool, bool]:
    from repro.zones.verify import verify_event_condition

    report = verify_event_condition(
        system.timed, INC(0), INC(0), claim, occurrences=2, max_nodes=40_000
    )
    return report.verdict.holds, False


def _symbolic_verdict(system: RandomSystem, claim: Interval) -> Tuple[bool, bool]:
    """FM feasibility of a violating gap: the anchor window [a1, a2] is
    exactly attainable, so the claim fails iff some gap in the window
    falls strictly outside the claim."""
    from repro.analyze.constraints import ge, gt, le, lt, var
    from repro.analyze.fourier_motzkin import decide

    anchor = system.cells[0].interval
    gap = var("gap")
    window = [ge(gap, anchor.lo), le(gap, anchor.hi)]
    below = decide(window + [lt(gap, claim.lo)])
    above = decide(window + [gt(gap, claim.hi)])
    return not (below.feasible or above.feasible), False


def _lint_errors(system: RandomSystem) -> List[str]:
    from repro.lint.driver import lint_system
    from repro.lint.targets import SystemTarget

    report = lint_system(
        SystemTarget(
            name="fuzz-instance",
            timed_automata=(("fuzz/(A,b)", system.timed),),
            waivers=(("R005", "'INC_"),),
        )
    )
    return [d.render() for d in report.errors]


# ----------------------------------------------------------------------
# Instance and campaign results
# ----------------------------------------------------------------------


@dataclass
class FuzzInstance:
    """One fuzzed instance's differential verdicts."""

    index: int
    seed: int
    recipe: Dict[str, Any]
    expected: bool
    verdicts: Dict[str, bool]
    #: Legs whose clean answer is budget-truncated, hence indeterminate.
    truncated: Tuple[str, ...] = ()
    lint_errors: Tuple[str, ...] = ()

    @property
    def determinate(self) -> Dict[str, bool]:
        return {
            leg: verdict
            for leg, verdict in self.verdicts.items()
            if leg not in self.truncated
        }

    @property
    def agree(self) -> bool:
        """No engine split, and no determinate verdict against the
        constructed ground truth (and the instance self-linted clean)."""
        if self.lint_errors:
            return False
        return all(v == self.expected for v in self.determinate.values())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "gen_version": GEN_VERSION,
            "index": self.index,
            "seed": self.seed,
            "recipe": self.recipe,
            "expected": self.expected,
            "verdicts": dict(sorted(self.verdicts.items())),
            "truncated": sorted(self.truncated),
            "lint_errors": list(self.lint_errors),
            "agree": self.agree,
        }


@dataclass
class FuzzReport:
    """A campaign's outcome: instance count, disagreements, truncation
    accounting.  ``detail`` is deterministic (no wall times) so two
    identically-seeded campaigns render identically."""

    seed: int
    start: int
    count: int
    instances: List[FuzzInstance] = field(default_factory=list)

    @property
    def disagreements(self) -> List[FuzzInstance]:
        return [inst for inst in self.instances if not inst.agree]

    @property
    def truncated_legs(self) -> int:
        return sum(len(inst.truncated) for inst in self.instances)

    @property
    def ok(self) -> bool:
        return not self.disagreements

    @property
    def detail(self) -> str:
        return (
            "{} instances (seed {}, start {}): {} disagreement(s), "
            "{} truncated leg(s)".format(
                len(self.instances),
                self.seed,
                self.start,
                len(self.disagreements),
                self.truncated_legs,
            )
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "gen_version": GEN_VERSION,
            "seed": self.seed,
            "start": self.start,
            "count": self.count,
            "ok": self.ok,
            "detail": self.detail,
            "disagreements": [inst.to_dict() for inst in self.disagreements],
        }


def _instance_rng(seed: int, index: int) -> random.Random:
    # One independent stream per (campaign seed, instance index): the
    # multiplier keeps neighbouring campaigns' streams disjoint.
    return random.Random(seed * 1_000_003 + index)


def check_recipe(
    recipe: Dict[str, Any], index: int = 0, seed: int = 0
) -> FuzzInstance:
    """Run the full differential oracle over one recipe."""
    system, claim, expected = build_instance(recipe)
    lint_errors = tuple(_lint_errors(system))
    verdicts: Dict[str, bool] = {}
    truncated: List[str] = []
    legs = [
        ("mapping", _mapping_verdict),
        ("semantic", _semantic_verdict),
        ("zones", _zone_verdict),
        ("symbolic", _symbolic_verdict),
    ]
    for leg, decide_leg in legs:
        verdict, was_truncated = decide_leg(system, claim)
        verdicts[leg] = verdict
        if was_truncated:
            truncated.append(leg)
    return FuzzInstance(
        index=index,
        seed=seed,
        recipe=recipe,
        expected=expected,
        verdicts=verdicts,
        truncated=tuple(truncated),
        lint_errors=lint_errors,
    )


def run_campaign(
    count: int,
    seed: int = 0,
    start: int = 0,
    artifact_dir: Optional[str] = None,
) -> FuzzReport:
    """Fuzz ``count`` instances with indices ``start .. start+count-1``.

    Sharding a campaign means splitting the index range over several
    calls with the same ``seed``; the union is instance-for-instance
    identical to one big call.  On any disagreement a reproducer is
    written to ``artifact_dir`` (if given) before the report returns.
    """
    if count <= 0:
        raise ReproError("fuzz campaign needs a positive instance count")
    report = FuzzReport(seed=seed, start=start, count=count)
    for index in range(start, start + count):
        recipe = sample_recipe(_instance_rng(seed, index))
        instance = check_recipe(recipe, index=index, seed=seed)
        report.instances.append(instance)
        if not instance.agree and artifact_dir is not None:
            write_reproducer(instance, artifact_dir)
    return report


# ----------------------------------------------------------------------
# Reproducer artifacts
# ----------------------------------------------------------------------


def write_reproducer(instance: FuzzInstance, artifact_dir: str) -> str:
    """Serialise a disagreeing instance; returns the file path."""
    os.makedirs(artifact_dir, exist_ok=True)
    path = os.path.join(
        artifact_dir,
        "fuzz-repro-seed{}-idx{}.json".format(instance.seed, instance.index),
    )
    with open(path, "w") as fh:
        json.dump(instance.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_reproducer(path: str) -> FuzzInstance:
    """Re-run the oracle on a serialized reproducer — deterministic, so
    the disagreement (if still present) replays exactly."""
    with open(path) as fh:
        payload = json.load(fh)
    if payload.get("gen_version") != GEN_VERSION:
        raise ReproError(
            "reproducer {} was written by gen version {}, this is {}".format(
                path, payload.get("gen_version"), GEN_VERSION
            )
        )
    return check_recipe(
        payload["recipe"],
        index=payload.get("index", 0),
        seed=payload.get("seed", 0),
    )
