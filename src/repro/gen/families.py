"""Parametric system families.

Each family is the paper's construction at an arbitrary size: Fischer
mutual exclusion with ``n`` processes, the Section 6 signal relay as a
``k``-stage line, the same hop discipline closed into a token ring or
fanned out into a tree (the B_k hierarchy applied per root-leaf path),
and the tournament mutex bracket.  :func:`build_bundle` turns a parsed
``gen:`` name into a :class:`GeneratedSystem` — everything the rest of
the toolchain needs to treat the instance exactly like a shipped
system: the ``(A, b)`` timed automaton and exploration cap, exhaustive
mapping obligations, the lint target, the statically dischargeable
obligations with their declared closed-form bounds, and the perturb
battery ``check`` evaluates at ``ε = 0``.

Cost model (the :mod:`repro.gen.names` caps exist to keep these true):

==============  =======================  ================================
family          untimed states           battery
==============  =======================  ================================
fischer(n)      ~5^n (16,320 at n=6)     full zone sweep for n <= 3;
                                         bounded sweep + seeded runs above
relay_line(k)   k + 4                    full hierarchy sweep + zones
relay_ring(k)   k                        exact zone lap/arrival bounds
relay_tree(d,f) order ideals of the      spine hierarchy sweep + zone
                node poset (677 at 3x2)  root-to-leaf bounds
tournament(w)   ~26 (w=2), 3,764 (w=4)   full sweep at w=2; bounded above
==============  =======================  ================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.gen.names import GEN_VERSION, GenName, parse
from repro.ioa.actions import Act, Kind
from repro.ioa.composition import Composition
from repro.ioa.guarded import ActionSpec, GuardedAutomaton
from repro.ioa.partition import Partition
from repro.timed.boundmap import Boundmap, TimedAutomaton
from repro.timed.interval import Interval

__all__ = [
    "GeneratedSystem",
    "FIRE",
    "PASS",
    "build_bundle",
    "tree_node_count",
    "tree_state_count",
]

#: The canonical hop window every generated relay-style family uses —
#: matches the shipped relay (d1=1, d2=2) so bound tables line up.
_HOP = Interval(Fraction(1), Fraction(2))


def PASS(i: int) -> Act:
    """Station ``i`` hands the token on (relay_ring)."""
    return Act("PASS", (i,))


def FIRE(i: int) -> Act:
    """Node ``i`` propagates the signal to its children (relay_tree)."""
    return Act("FIRE", (i,))


@dataclass
class GeneratedSystem:
    """One generated instance, fully formed.

    Field factories are thunks so that cheap queries (``gen list``,
    cache-key derivation) never build automata; results are memoised on
    first use because one CLI invocation touches several accessors.
    """

    name: str
    family: str
    params: Dict[str, int]
    description: str
    timed_factory: Callable[[], TimedAutomaton]
    system_factory: Callable[[], Any]
    max_states: int
    grid: Optional[Fraction]
    horizon: Optional[Fraction]
    #: ``() -> [(label, mapping)]`` or None for zone-only instances.
    mappings_factory: Optional[Callable[[], List[Tuple[str, Any]]]]
    lint_target_factory: Callable[[], Any]
    obligations_factory: Callable[[], List[Any]]
    bounds_factory: Callable[[], List[Any]]
    tolerance: Optional[Fraction]
    #: Conditions handed to the interference pass (driver semantics).
    requirements_factory: Callable[[], Tuple[Any, ...]] = lambda: ()
    analyze_waivers: Tuple[Tuple[str, str], ...] = ()
    perturb_direction: str = "tighten"
    #: ``(direction, mode, seeds, steps, seed) -> (description, ceiling,
    #: evaluate)`` — the same contract as the shipped perturb builders.
    perturb_builder: Optional[Callable] = None
    _memo: Dict[str, Any] = field(default_factory=dict, repr=False)

    def _cached(self, key: str, thunk: Callable[[], Any]) -> Any:
        if key not in self._memo:
            self._memo[key] = thunk()
        return self._memo[key]

    def timed(self) -> TimedAutomaton:
        return self._cached("timed", self.timed_factory)

    def system(self) -> Any:
        return self._cached("system", self.system_factory)

    def mappings(self) -> Optional[List[Tuple[str, Any]]]:
        if self.mappings_factory is None:
            return None
        return self._cached("mappings", self.mappings_factory)

    def lint_target(self) -> Any:
        return self._cached("lint", self.lint_target_factory)

    def obligations(self) -> List[Any]:
        return self._cached("obligations", self.obligations_factory)

    def bounds(self) -> List[Any]:
        return self._cached("bounds", self.bounds_factory)

    def requirements(self) -> Tuple[Any, ...]:
        return self._cached("requirements", self.requirements_factory)

    def describe_dict(self) -> Dict[str, Any]:
        """A stable, JSON-serialisable description of the instance —
        the payload ``gen emit`` prints.  Deterministic by construction
        (sorted keys, exact fractions as strings), so equal seeds and
        params yield byte-identical serialisations across processes."""
        timed = self.timed()
        classes = sorted(name for name, _ in timed.boundmap.items())
        boundmap = {
            name: [_frac(timed.boundmap[name].lo), _frac(timed.boundmap[name].hi)]
            for name in classes
        }
        bounds = [
            {
                "label": bound.label,
                "derived": [_frac(bound.derived.lo), _frac(bound.derived.hi)],
                "declared": [_frac(bound.declared.lo), _frac(bound.declared.hi)],
            }
            for bound in sorted(self.bounds(), key=lambda b: b.label)
        ]
        return {
            "gen_version": GEN_VERSION,
            "name": self.name,
            "family": self.family,
            "params": dict(sorted(self.params.items())),
            "description": self.description,
            "classes": classes,
            "boundmap": boundmap,
            "max_states": self.max_states,
            "grid": None if self.grid is None else _frac(self.grid),
            "horizon": None if self.horizon is None else _frac(self.horizon),
            "mappings": [label for label, _ in (self.mappings() or [])],
            "declared_bounds": bounds,
            "tolerance": None if self.tolerance is None else _frac(self.tolerance),
        }


def _frac(value) -> str:
    from repro.timed.interval import INFINITY

    if value == INFINITY:
        return "inf"
    return str(Fraction(value))


# ----------------------------------------------------------------------
# fischer(n)
# ----------------------------------------------------------------------


def _fischer_bundle(parsed: GenName) -> GeneratedSystem:
    from repro.systems.extensions import FischerParams

    n = parsed.params[0]
    params = FischerParams(n=n, a=Fraction(1), b=Fraction(2))

    def timed():
        from repro.systems.extensions import fischer_system

        return fischer_system(params)

    def lint_target():
        from repro.lint.targets import SystemTarget

        return SystemTarget(
            name=parsed.name,
            timed_automata=(("{}/(A,b)".format(parsed.name), timed()),),
            waivers=(("R005", "'TRY_"), ("R005", "'EXIT_")),
        )

    def obligations():
        from repro.analyze.obligations import _fischer_obligation

        return [_fischer_obligation(parsed.name, params)]

    def bounds():
        from repro.analyze.composition import _fischer_bounds

        return _fischer_bounds(parsed.name, params)

    def perturb(direction, mode, seeds, steps, seed):
        from repro.systems.extensions import fischer_system, mutual_exclusion_violated

        # Above n = 3 the full sweep is out of reach (~78 ms/node, 5^n
        # growth); the battery degrades to a *bounded* sweep — reported
        # inconclusive so nothing partial is ever cached as settled —
        # plus the seeded adversarial runs.
        full = n <= 3
        return _safety_battery(
            timed=timed(),
            predicate=mutual_exclusion_violated,
            describe="mutual exclusion violated",
            description="generated Fischer mutex (n={}, a=1, b=2): {}".format(
                n,
                "full zone safety sweep"
                if full
                else "bounded zone sweep + adversarial runs",
            ),
            max_nodes=200_000 if full else 120,
            conclusive=full,
            direction=direction,
            mode=mode,
            seeds=seeds,
            steps=steps,
            seed=seed,
        )

    return GeneratedSystem(
        name=parsed.name,
        family="fischer",
        params=parsed.params_dict(),
        description="Fischer mutual exclusion with {} processes "
        "(set within [0, 1], check within [2, 4])".format(n),
        timed_factory=timed,
        system_factory=lambda: params,
        max_states=max(4_000, 200 * 4 ** (n - 2)),
        grid=None,
        horizon=None,
        mappings_factory=None,
        lint_target_factory=lint_target,
        obligations_factory=obligations,
        bounds_factory=bounds,
        tolerance=Fraction(params.b - params.a, params.a + params.b),
        perturb_direction="widen",
        perturb_builder=perturb,
    )


# ----------------------------------------------------------------------
# relay_line(k) — the paper's Section 6 relay at arbitrary length
# ----------------------------------------------------------------------


def _relay_line_bundle(parsed: GenName) -> GeneratedSystem:
    k = parsed.params[0]

    def system():
        from repro.systems import RelayParams, RelaySystem

        return RelaySystem(RelayParams(n=k, d1=_HOP.lo, d2=_HOP.hi))

    def mappings():
        from repro.systems import relay_hierarchy

        chain = relay_hierarchy(system())
        return [
            ("relay[{}]".format(level), mapping)
            for level, mapping in enumerate(chain)
        ]

    def lint_target():
        from repro.lint.targets import SystemTarget
        from repro.systems import relay_hierarchy

        sys = system()
        return SystemTarget(
            name=parsed.name,
            timed_automata=(
                ("{}/(A,b)".format(parsed.name), sys.timed),
                ("{}/(A~,b~)".format(parsed.name), sys.dummified),
            ),
            condition_sets=(
                (
                    "{}/requirements".format(parsed.name),
                    sys.dummified.automaton,
                    (sys.requirement,),
                ),
            ),
            chains=(("{}/hierarchy".format(parsed.name), relay_hierarchy(sys)),),
            waivers=(("R005", "'SIGNAL_0'"),),
        )

    def obligations():
        from repro.analyze.obligations import _relay_obligations

        return _relay_obligations(parsed.name, system())

    def bounds():
        from repro.analyze.composition import _relay_bounds

        return _relay_bounds(parsed.name, system())

    def perturb(direction, mode, seeds, steps, seed):
        return _relay_line_battery(k, direction, mode, seeds, steps, seed)

    return GeneratedSystem(
        name=parsed.name,
        family="relay_line",
        params=parsed.params_dict(),
        description="Section 6 signal relay as a {}-stage line "
        "(hop bound [1, 2], end-to-end [{}, {}])".format(k, k, 2 * k),
        timed_factory=lambda: system().timed,
        system_factory=system,
        max_states=4_000,
        grid=Fraction(1, 2),
        horizon=Fraction(k + 2),
        mappings_factory=mappings,
        lint_target_factory=lint_target,
        obligations_factory=obligations,
        bounds_factory=bounds,
        tolerance=Fraction(_HOP.hi - _HOP.lo, _HOP.lo + _HOP.hi),
        requirements_factory=lambda: (system().requirement,),
        perturb_direction="tighten",
        perturb_builder=perturb,
    )


def _relay_line_battery(k: int, direction, mode, seeds, steps, seed):
    from repro.core.mappings import MappingChain
    from repro.core.projection import project
    from repro.core.dummification import undum
    from repro.faults.checks import (
        lemma_2_1_check,
        mapping_run_check,
        slack_refinement_mapping,
        zone_condition_check,
    )
    from repro.faults.perturb import Drift, perturb_interval
    from repro.faults.targets import _adversarial_runs, _run_checks
    from repro.systems import SIGNAL, RelayParams, RelaySystem, relay_hierarchy

    nominal = RelaySystem(RelayParams(n=k, d1=_HOP.lo, d2=_HOP.hi))
    claimed = nominal.params.end_to_end_interval

    def evaluate(eps, budget):
        if eps == 0:
            perturbed = nominal
        else:
            stage = perturb_interval(_HOP, Drift(eps, mode=mode, direction=direction))
            perturbed = RelaySystem(RelayParams(n=k, d1=stage.lo, d2=stage.hi))
        chain = MappingChain(
            list(relay_hierarchy(perturbed).mappings)
            + [
                slack_refinement_mapping(
                    perturbed.requirements,
                    nominal.requirements,
                    name="relay slack refinement",
                )
            ]
        )
        runs = _adversarial_runs(perturbed.algorithm, budget, seeds, steps, base=seed)
        checks = [
            (
                "Section 6 hierarchy + slack refinement",
                lambda: mapping_run_check(chain, runs, budget),
            ),
            (
                "Lemma 2.1 vs nominal (A, b)",
                lambda: lemma_2_1_check(
                    nominal.timed, [undum(project(run)) for run in runs], budget
                ),
            ),
            (
                "zone end-to-end bound",
                lambda: zone_condition_check(
                    perturbed.timed, SIGNAL(0), SIGNAL(k), claimed, budget=budget
                ),
            ),
        ]
        return _run_checks(checks, budget)

    description = (
        "generated signal relay (n={}, d1=1, d2=2): Section 6 hierarchy "
        "chained into the nominal requirements".format(k)
    )
    return description, Fraction(1), evaluate


# ----------------------------------------------------------------------
# relay_ring(k) — the hop discipline closed into a token ring
# ----------------------------------------------------------------------


def _ring_timed(k: int) -> TimedAutomaton:
    """``k`` stations pass one token around; station ``i`` may pass
    within [d1, d2] of receiving.  State is the token's position."""
    specs = [
        ActionSpec(
            PASS(i),
            Kind.OUTPUT,
            precondition=lambda p, i=i: p == i,
            effect=lambda p: (p + 1) % k,
        )
        for i in range(k)
    ]
    automaton = GuardedAutomaton(
        name="ring{}".format(k),
        start=[0],
        specs=specs,
        partition=Partition.from_pairs(
            [("PASS_{}".format(i), [PASS(i)]) for i in range(k)]
        ),
    )
    return TimedAutomaton(
        automaton, Boundmap({"PASS_{}".format(i): _HOP for i in range(k)})
    )


def _relay_ring_bundle(parsed: GenName) -> GeneratedSystem:
    k = parsed.params[0]
    lap = _HOP.scale(k)

    def lint_target():
        from repro.lint.targets import SystemTarget

        return SystemTarget(
            name=parsed.name,
            timed_automata=(("{}/(A,b)".format(parsed.name), _ring_timed(k)),),
            waivers=(("R005", "'PASS_"),),
        )

    def obligations():
        return _ring_obligations(parsed.name, k)

    def bounds():
        from repro.analyze.composition import DerivedBound, _fold

        return [
            DerivedBound(
                system=parsed.name,
                label="lap",
                derived=_fold([_HOP] * k),
                declared=lap,
                detail="Minkowski sum of {} hop windows".format(k),
            ),
            DerivedBound(
                system=parsed.name,
                label="first-arrival",
                derived=_fold([_HOP] * k),
                declared=lap,
                detail="the token reaches station {} after {} hops".format(
                    k - 1, k
                ),
            ),
        ]

    def perturb(direction, mode, seeds, steps, seed):
        return _ring_battery(k, direction, mode, seeds, steps, seed)

    return GeneratedSystem(
        name=parsed.name,
        family="relay_ring",
        params=parsed.params_dict(),
        description="token ring of {} stations (hop bound [1, 2], "
        "lap time [{}, {}])".format(k, k, 2 * k),
        timed_factory=lambda: _ring_timed(k),
        system_factory=lambda: parsed.params_dict(),
        max_states=4_000,
        grid=None,
        horizon=None,
        mappings_factory=None,
        lint_target_factory=lint_target,
        obligations_factory=obligations,
        bounds_factory=bounds,
        tolerance=Fraction(_HOP.hi - _HOP.lo, _HOP.lo + _HOP.hi),
        perturb_direction="tighten",
        perturb_builder=perturb,
    )


def _ring_obligations(name: str, k: int) -> List[Any]:
    from repro.analyze.constraints import ge, le, var
    from repro.analyze.obligations import _Case, _discharge_cases

    d1, d2 = _HOP.lo, _HOP.hi
    hops = [var("g_{}".format(i)) for i in range(k)]
    window = []
    for hop in hops:
        window.append(ge(hop, d1))
        window.append(le(hop, d2))
    total = hops[0]
    for hop in hops[1:]:
        total = total + hop
    case = _Case(
        name="lap-window",
        hypotheses=tuple(window),
        goals=(ge(total, k * d1), le(total, k * d2)),
    )
    return [
        _discharge_cases(
            name,
            "lap-bound",
            [case],
            mapping_label=None,
            detail="{} hops of [{}, {}] each land the lap in [{}, {}]".format(
                k, d1, d2, k * d1, k * d2
            ),
        )
    ]


def _ring_battery(k: int, direction, mode, seeds, steps, seed):
    from repro.core.projection import project
    from repro.core.time_automaton import time_of_boundmap
    from repro.faults.checks import (
        absolute_bounds_check,
        lemma_2_1_check,
        zone_condition_check,
    )
    from repro.faults.perturb import Drift, perturb_boundmap
    from repro.faults.targets import _adversarial_runs, _run_checks

    nominal = _ring_timed(k)
    lap = _HOP.scale(k)

    def evaluate(eps, budget):
        perturbed = (
            nominal
            if eps == 0
            else perturb_boundmap(nominal, Drift(eps, mode=mode, direction=direction))
        )
        runs = _adversarial_runs(
            time_of_boundmap(perturbed), budget, seeds, steps, base=seed
        )
        checks = [
            (
                "Lemma 2.1 vs nominal (A, b)",
                lambda: lemma_2_1_check(
                    nominal, [project(run) for run in runs], budget
                ),
            ),
            (
                "zone lap bound",
                lambda: zone_condition_check(
                    perturbed, PASS(0), PASS(0), lap, occurrences=2, budget=budget
                ),
            ),
            (
                "zone first-arrival bound",
                lambda: absolute_bounds_check(
                    perturbed, PASS(k - 1), lap, budget=budget
                ),
            ),
        ]
        return _run_checks(checks, budget)

    description = (
        "generated token ring (k={}, hop [1, 2]): exact zone lap/arrival "
        "bounds plus Lemma 2.1 acceptance".format(k)
    )
    return description, Fraction(1), evaluate


# ----------------------------------------------------------------------
# relay_tree(depth, fanout) — one B_k hierarchy per root-leaf path
# ----------------------------------------------------------------------


def tree_node_count(depth: int, fanout: int) -> int:
    """Nodes of the complete tree with ``depth`` edge levels."""
    if fanout == 1:
        return depth + 1
    return (fanout ** (depth + 1) - 1) // (fanout - 1)


def tree_state_count(depth: int, fanout: int) -> int:
    """Reachable untimed states: ancestor-closed "fired" sets, i.e.
    order ideals of the node poset — ``a(0) = 2, a(l) = 1 + a(l-1)^f``."""
    count = 2
    for _ in range(depth):
        count = 1 + count ** fanout
    return count


def _tree_timed(depth: int, fanout: int) -> TimedAutomaton:
    """Per-node automata composed chain-style: a node arms when its
    parent fires (``Kind.INPUT``) and fires its own signal within
    [d1, d2]; the root starts armed."""
    total = tree_node_count(depth, fanout)

    def node(i: int) -> GuardedAutomaton:
        specs = [
            ActionSpec(
                FIRE(i),
                Kind.OUTPUT,
                precondition=lambda armed: armed,
                effect=lambda _armed: False,
            )
        ]
        if i > 0:
            parent = (i - 1) // fanout
            specs.append(
                ActionSpec(FIRE(parent), Kind.INPUT, effect=lambda _armed: True)
            )
        return GuardedAutomaton(
            name="node{}".format(i),
            start=[i == 0],
            specs=specs,
            partition=Partition.from_pairs([("FIRE_{}".format(i), [FIRE(i)])]),
        )

    composed = Composition(
        [node(i) for i in range(total)], name="tree{}x{}".format(depth, fanout)
    )
    return TimedAutomaton(
        composed, Boundmap({"FIRE_{}".format(i): _HOP for i in range(total)})
    )


def _tree_leaves(depth: int, fanout: int) -> List[int]:
    total = tree_node_count(depth, fanout)
    if fanout == 1:
        return [total - 1]
    first_leaf = (fanout ** depth - 1) // (fanout - 1)
    return list(range(first_leaf, total))


def _tree_spine(depth: int):
    """The chain every root-leaf path is isomorphic to: ``depth`` hops
    of the uniform window.  The spine carries the tree's Theorem 6.4
    mapping hierarchy — each path discharges by the same argument."""
    from repro.systems.extensions.chain import ChainSystem

    return ChainSystem([_HOP] * depth)


def _relay_tree_bundle(parsed: GenName) -> GeneratedSystem:
    depth, fanout = parsed.params
    spine_memo: Dict[str, Any] = {}

    def spine():
        if "spine" not in spine_memo:
            spine_memo["spine"] = _tree_spine(depth)
        return spine_memo["spine"]

    def mappings():
        chain = spine().hierarchy()
        return [
            ("chain[{}]".format(level), mapping)
            for level, mapping in enumerate(chain)
        ]

    def lint_target():
        from repro.lint.targets import SystemTarget

        sys = spine()
        return SystemTarget(
            name=parsed.name,
            timed_automata=(
                ("{}/(A,b)".format(parsed.name), _tree_timed(depth, fanout)),
                ("{}/spine/(A~,b~)".format(parsed.name), sys.dummified),
            ),
            condition_sets=(
                (
                    "{}/spine/requirements".format(parsed.name),
                    sys.dummified.automaton,
                    (sys.requirement,),
                ),
            ),
            chains=(("{}/spine/hierarchy".format(parsed.name), sys.hierarchy()),),
            waivers=(("R005", "'FIRE_"), ("R005", "'EVENT_0'")),
        )

    def obligations():
        from repro.analyze.obligations import (
            ObligationResult,
            Verdict,
            _chain_obligations,
        )

        results = _chain_obligations(parsed.name, spine())
        leaves = len(_tree_leaves(depth, fanout))
        results.append(
            ObligationResult(
                system=parsed.name,
                obligation="path-uniformity",
                verdict=Verdict.PROVED,
                method="structural",
                detail="all {} root-leaf paths have exactly {} hops of the "
                "same window, so the spine hierarchy discharges every "
                "path".format(leaves, depth),
            )
        )
        return results

    def bounds():
        from repro.analyze.composition import DerivedBound, _chain_bounds, _fold

        results = _chain_bounds(parsed.name, spine())
        results.append(
            DerivedBound(
                system=parsed.name,
                label="leaf-arrival",
                derived=_fold([_HOP] * (depth + 1)),
                declared=_HOP.scale(depth + 1),
                detail="root arming hop plus {} tree levels".format(depth),
            )
        )
        return results

    def perturb(direction, mode, seeds, steps, seed):
        return _tree_battery(depth, fanout, direction, mode, seeds, steps, seed)

    states = tree_state_count(depth, fanout)
    return GeneratedSystem(
        name=parsed.name,
        family="relay_tree",
        params=parsed.params_dict(),
        description="signal broadcast tree (depth {}, fanout {}, {} nodes): "
        "every root-leaf path is a {}-hop B_k relay".format(
            depth, fanout, tree_node_count(depth, fanout), depth
        ),
        timed_factory=lambda: _tree_timed(depth, fanout),
        system_factory=spine,
        max_states=max(4_000, 2 * states),
        grid=Fraction(1, 2),
        horizon=Fraction(2 * depth + 1),
        mappings_factory=mappings,
        lint_target_factory=lint_target,
        obligations_factory=obligations,
        bounds_factory=bounds,
        tolerance=Fraction(_HOP.hi - _HOP.lo, _HOP.lo + _HOP.hi),
        requirements_factory=lambda: (),
        perturb_direction="tighten",
        perturb_builder=perturb,
    )


def _tree_battery(depth: int, fanout: int, direction, mode, seeds, steps, seed):
    """Zone sweeps over the full tree's zone graph are out of reach
    even at depth 3 x fanout 2 (tens of ms per node, and a truncated
    event-condition query degenerates to a vacuous HOLDS), so the timed
    evidence rides on the *spine*: every root-leaf path is isomorphic
    to the same ``depth``-hop chain (the PROVED path-uniformity
    obligation), whose hierarchy, slack refinement, and end-to-end zone
    bound are all cheap.  The tree automaton itself is still exercised
    exactly — untimed exploration by the check layer, and Lemma 2.1
    acceptance of adversarially scheduled timed runs here."""
    from repro.core.mappings import MappingChain
    from repro.core.projection import project
    from repro.core.dummification import undum
    from repro.core.time_automaton import time_of_boundmap
    from repro.faults.checks import (
        lemma_2_1_check,
        mapping_run_check,
        slack_refinement_mapping,
        zone_condition_check,
    )
    from repro.faults.perturb import Drift, perturb_boundmap, perturb_interval
    from repro.faults.targets import _adversarial_runs, _run_checks
    from repro.systems.extensions import EVENT
    from repro.systems.extensions.chain import ChainSystem

    nominal = _tree_timed(depth, fanout)
    nominal_spine = _tree_spine(depth)
    claimed = nominal_spine.requirement.interval

    def evaluate(eps, budget):
        if eps == 0:
            perturbed, spine = nominal, nominal_spine
        else:
            drift = Drift(eps, mode=mode, direction=direction)
            perturbed = perturb_boundmap(nominal, drift)
            stage = perturb_interval(_HOP, drift)
            spine = ChainSystem([stage] * depth)
        chain = MappingChain(
            list(spine.hierarchy().mappings)
            + [
                slack_refinement_mapping(
                    spine.requirements,
                    nominal_spine.requirements,
                    name="tree spine slack refinement",
                )
            ]
        )
        tree_runs = _adversarial_runs(
            time_of_boundmap(perturbed), budget, seeds, steps, base=seed
        )
        spine_runs = _adversarial_runs(spine.algorithm, budget, seeds, steps, base=seed)
        checks = [
            (
                "Lemma 2.1 vs nominal tree (A, b)",
                lambda: lemma_2_1_check(
                    nominal, [project(run) for run in tree_runs], budget
                ),
            ),
            (
                "spine hierarchy + slack refinement",
                lambda: mapping_run_check(chain, spine_runs, budget),
            ),
            (
                "zone spine end-to-end bound",
                lambda: zone_condition_check(
                    spine.timed, EVENT(0), EVENT(depth), claimed, budget=budget
                ),
            ),
        ]
        return _run_checks(checks, budget)

    description = (
        "generated broadcast tree (depth {}, fanout {}): Lemma 2.1 on the "
        "tree plus the full chain battery on its path spine".format(depth, fanout)
    )
    return description, Fraction(1), evaluate


# ----------------------------------------------------------------------
# tournament(width)
# ----------------------------------------------------------------------


def _tournament_bundle(parsed: GenName) -> GeneratedSystem:
    from repro.systems.extensions import TournamentParams

    width = parsed.params[0]
    params = TournamentParams(n=width, s1=Fraction(1), s2=Fraction(2))

    def timed():
        from repro.systems.extensions import tournament_system

        return tournament_system(params)

    def lint_target():
        from repro.lint.targets import SystemTarget

        return SystemTarget(
            name=parsed.name,
            timed_automata=(("{}/(A,b)".format(parsed.name), timed()),),
            waivers=(("R005", "'CS_"), ("R005", "'STEP_")),
        )

    def obligations():
        from repro.analyze.obligations import _tournament_obligations

        return _tournament_obligations(parsed.name, params)

    def bounds():
        from repro.analyze.composition import _tournament_bounds

        return _tournament_bounds(parsed.name, params)

    def perturb(direction, mode, seeds, steps, seed):
        from repro.systems.extensions import (
            tournament_mutex_violated,
            tournament_system,
        )

        full = width <= 2
        return _safety_battery(
            timed=timed(),
            predicate=tournament_mutex_violated,
            describe="two processes critical",
            description="generated tournament mutex (width {}): {}".format(
                width,
                "full zone safety sweep"
                if full
                else "bounded zone sweep + adversarial runs",
            ),
            max_nodes=200_000 if full else 400,
            conclusive=full,
            direction=direction,
            mode=mode,
            seeds=seeds,
            steps=steps,
            seed=seed,
        )

    return GeneratedSystem(
        name=parsed.name,
        family="tournament",
        params=parsed.params_dict(),
        description="tournament mutual exclusion bracket of width {} "
        "({} levels, step bound [1, 2])".format(width, params.height),
        timed_factory=timed,
        system_factory=lambda: params,
        max_states=max(4_000, 2_000 * width),
        grid=None,
        horizon=None,
        mappings_factory=None,
        lint_target_factory=lint_target,
        obligations_factory=obligations,
        bounds_factory=bounds,
        tolerance=None,
        perturb_direction="widen",
        perturb_builder=perturb,
    )


# ----------------------------------------------------------------------
# Shared safety battery (fischer / tournament)
# ----------------------------------------------------------------------


def _safety_battery(
    timed,
    predicate,
    describe,
    description,
    max_nodes,
    conclusive,
    direction,
    mode,
    seeds,
    steps,
    seed,
):
    """The widening battery: a zone safety sweep (full or deliberately
    bounded) plus adversarial simulation runs whose visited states are
    screened against the predicate.

    A bounded sweep that runs out of nodes is reported ``ok`` but with
    ``exhausted_budget`` set, so callers (and the verdict cache) treat
    it as inconclusive rather than settled — ``search_reachable_state``
    alone would report a truncated sweep as merely non-conclusive,
    which the check layer would cache as a clean pass.
    """
    from repro.core.checker import CheckOutcome
    from repro.core.time_automaton import time_of_boundmap
    from repro.faults.perturb import Drift, perturb_boundmap
    from repro.faults.targets import _adversarial_runs, _run_checks
    from repro.zones.analysis import search_reachable_state

    def evaluate(eps, budget):
        perturbed = (
            timed
            if eps == 0
            else perturb_boundmap(timed, Drift(eps, mode=mode, direction=direction))
        )

        def sweep():
            result = search_reachable_state(
                perturbed, predicate, max_nodes=max_nodes, budget=budget
            )
            if result.state is not None:
                return CheckOutcome(
                    False,
                    result.nodes,
                    "{}: state {!r} reachable".format(describe, result.state),
                )
            detail = (
                "zone sweep clean over {} nodes".format(result.nodes)
                if result.conclusive
                else "bounded zone sweep inconclusive after {} nodes".format(
                    result.nodes
                )
            )
            return CheckOutcome(
                True,
                result.nodes,
                detail,
                exhausted_budget=not result.conclusive,
            )

        def run_screen():
            runs = _adversarial_runs(
                time_of_boundmap(perturbed), budget, seeds, steps, base=seed
            )
            scanned = 0
            for run in runs:
                for state in _run_states(run):
                    scanned += 1
                    if predicate(state):
                        return CheckOutcome(
                            False,
                            scanned,
                            "{}: reached in a simulated run".format(describe),
                        )
            return CheckOutcome(
                True, scanned, "no violation in {} visited states".format(scanned)
            )

        checks = [("zone safety sweep", sweep)]
        if not conclusive:
            checks.append(("adversarial run screen", run_screen))
        return _run_checks(checks, budget)

    return description, Fraction(1), evaluate


def _run_states(run) -> List[Any]:
    """The untimed states a simulated run visited (each
    :class:`~repro.core.time_state.TimeState` wraps the base state as
    ``astate``)."""
    states = run.states() if callable(run.states) else run.states
    return [getattr(tstate, "astate", tstate) for tstate in states]


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------

_BUILDERS: Dict[str, Callable[[GenName], GeneratedSystem]] = {
    "fischer": _fischer_bundle,
    "relay_line": _relay_line_bundle,
    "relay_ring": _relay_ring_bundle,
    "relay_tree": _relay_tree_bundle,
    "tournament": _tournament_bundle,
}

_BUNDLES: Dict[str, GeneratedSystem] = {}


def build_bundle(name: str) -> GeneratedSystem:
    """The :class:`GeneratedSystem` for a ``gen:`` name (memoised per
    process; bundles are immutable once built)."""
    if name not in _BUNDLES:
        parsed = parse(name)
        builder = _BUILDERS.get(parsed.family)
        if builder is None:
            raise ReproError(
                "no bundle builder for family {!r}".format(parsed.family)
            )
        _BUNDLES[name] = builder(parsed)
    return _BUNDLES[name]
