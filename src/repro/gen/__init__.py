"""``repro.gen`` — parametric system families and the differential
proof-method fuzzer.

Two halves:

* :mod:`repro.gen.names` / :mod:`repro.gen.families` — the ``gen:``
  namespace.  ``gen:fischer-4``-style names are accepted everywhere a
  shipped system name is (check, lint, analyze, perturb, the runner,
  the serve daemon); :func:`build_bundle` materialises the instance.
* :mod:`repro.gen.fuzzer` — seeded random well-formed timed automata
  pushed through three independent proof methods (exhaustive mapping
  sweep, zone-graph search, symbolic discharge); any disagreement is a
  bug in an engine and fails loudly with a serialized reproducer.
"""

from repro.gen.names import (
    GEN_PREFIX,
    GEN_VERSION,
    GenName,
    cache_parts,
    family_names,
    family_specs,
    is_gen_name,
    parse,
    sample_names,
)
from repro.gen.families import GeneratedSystem, build_bundle

__all__ = [
    "GEN_PREFIX",
    "GEN_VERSION",
    "GenName",
    "GeneratedSystem",
    "build_bundle",
    "cache_parts",
    "family_names",
    "family_specs",
    "is_gen_name",
    "parse",
    "sample_names",
]
