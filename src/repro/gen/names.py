"""The ``gen:`` name grammar for generated systems.

Generated systems have no source file; their identity is the pair
``(family, params)``.  Everywhere the toolchain accepts a system name —
``check``, ``lint``, ``analyze``, ``perturb``, the runner, the serve
daemon — a well-formed ``gen:`` name is admitted by parsing it through
this module.  The grammar is deliberately tiny and closed::

    gen:fischer-N        N processes,         2 <= N <= 6
    gen:relay_line-K     K relay stages,      1 <= K <= 8
    gen:relay_ring-K     K-station token ring 2 <= K <= 12
    gen:relay_tree-DxF   depth D, fanout F,   1 <= D <= 4, 1 <= F <= 3
                         (and the tree's state count must stay explorable:
                         4x2 and 3x3 exceed the cap and are rejected)
    gen:tournament-W     bracket width W in {2, 4}

The caps are feasibility bounds, not aesthetics: they keep every
generated instance inside the exploration/zone budgets its battery
declares (see :mod:`repro.gen.families` for the per-family cost model).

:data:`GEN_VERSION` stamps every cache fingerprint derived from a
generated system.  Bump it whenever a family's construction changes
meaning without a source diff elsewhere.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.errors import ReproError

__all__ = [
    "GEN_PREFIX",
    "GEN_VERSION",
    "GenName",
    "cache_parts",
    "family_names",
    "family_specs",
    "is_gen_name",
    "parse",
    "sample_names",
]

#: Version stamp folded into every gen-derived verdict-cache key.
GEN_VERSION = 1

#: The namespace prefix that marks a generated-system name.
GEN_PREFIX = "gen:"

#: ``family -> (param names, (lo, hi) cap per param)``.  ``tournament``
#: additionally requires a power of two (checked in :func:`parse`).
_FAMILIES: Dict[str, Tuple[Tuple[str, ...], Tuple[Tuple[int, int], ...]]] = {
    "fischer": (("n",), ((2, 6),)),
    "relay_line": (("k",), ((1, 8),)),
    "relay_ring": (("k",), ((2, 12),)),
    "relay_tree": (("depth", "fanout"), ((1, 4), (1, 3))),
    "tournament": (("width",), ((2, 4),)),
}

_NAME_RE = re.compile(r"^gen:([a-z_]+)-(\d+)(?:x(\d+))?$")

#: The largest untimed state space a generated tree may have — combos
#: past this would truncate exploration and fail ``check`` by design.
#: 500k admits every depth≤4 tree with fanout ≤ 2 (relay_tree-4x2 has
#: 458,330 states; its checks ride the spine so verification stays
#: cheap) while still rejecting the 389-million-state relay_tree-3x3.
_TREE_STATE_CAP = 500_000


@dataclass(frozen=True)
class GenName:
    """A parsed ``gen:`` name: the family plus its integer parameters."""

    family: str
    params: Tuple[int, ...]

    @property
    def name(self) -> str:
        return GEN_PREFIX + self.family + "-" + "x".join(str(p) for p in self.params)

    def params_dict(self) -> Dict[str, int]:
        keys, _caps = _FAMILIES[self.family]
        return dict(zip(keys, self.params))


def is_gen_name(name: str) -> bool:
    """True iff ``name`` lives in the ``gen:`` namespace (well-formed
    or not — use :func:`parse` to validate)."""
    return isinstance(name, str) and name.startswith(GEN_PREFIX)


def family_names() -> Tuple[str, ...]:
    return tuple(sorted(_FAMILIES))


def family_specs() -> Dict[str, Dict[str, Any]]:
    """``family -> {"params": [...], "ranges": [[name, lo, hi], ...]}``,
    the machine-readable roster behind ``repro gen list``."""
    return {
        family: {
            "params": list(keys),
            "ranges": [[key, lo, hi] for key, (lo, hi) in zip(keys, caps)],
        }
        for family, (keys, caps) in sorted(_FAMILIES.items())
    }


def parse(name: str) -> GenName:
    """Parse and validate a ``gen:`` name, raising :class:`ReproError`
    with an actionable message on any violation."""
    match = _NAME_RE.match(name)
    if not match:
        raise ReproError(
            "malformed generated-system name {!r}; expected gen:<family>-<params> "
            "like gen:fischer-4 or gen:relay_tree-3x2 (families: {})".format(
                name, ", ".join(family_names())
            )
        )
    family = match.group(1)
    spec = _FAMILIES.get(family)
    if spec is None:
        raise ReproError(
            "unknown generated-system family {!r} (known: {})".format(
                family, ", ".join(family_names())
            )
        )
    keys, caps = spec
    raw = [g for g in match.groups()[1:] if g is not None]
    if len(raw) != len(keys):
        raise ReproError(
            "family {!r} takes {} parameter(s) ({}), got {} in {!r}".format(
                family, len(keys), ", ".join(keys), len(raw), name
            )
        )
    params = tuple(int(g) for g in raw)
    for key, value, (lo, hi) in zip(keys, params, caps):
        if not lo <= value <= hi:
            raise ReproError(
                "parameter {}={} of {!r} outside the feasible range [{}, {}]".format(
                    key, value, name, lo, hi
                )
            )
    if family == "tournament" and params[0] & (params[0] - 1) != 0:
        raise ReproError(
            "tournament width must be a power of two (2 or 4), got {}".format(params[0])
        )
    if family == "relay_tree":
        from repro.gen.families import tree_state_count

        states = tree_state_count(*params)
        if states > _TREE_STATE_CAP:
            raise ReproError(
                "relay_tree-{}x{} has {} reachable states, past the exploration "
                "cap of {}; shrink depth or fanout".format(
                    params[0], params[1], states, _TREE_STATE_CAP
                )
            )
    return GenName(family, params)


def cache_parts(name: str) -> Dict[str, Any]:
    """The extra verdict-cache key parts for a generated system.

    Generated systems have no source file, so their cache identity is
    ``(family, params, GEN_VERSION)`` on top of the package-source
    fingerprint the cache already folds in.
    """
    parsed = parse(name)
    return {
        "gen_family": parsed.family,
        "gen_params": list(parsed.params),
        "gen_version": GEN_VERSION,
    }


def sample_names() -> List[str]:
    """One representative name per family — the roster ``gen list``
    prints and the runner/serve registries admit by default."""
    return [
        "gen:fischer-3",
        "gen:relay_line-5",
        "gen:relay_ring-6",
        "gen:relay_tree-3x2",
        "gen:tournament-2",
    ]
