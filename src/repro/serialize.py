"""JSON (de)serialisation of runs, timed sequences, and telemetry.

Lets users persist a failing counterexample run and reload it later —
exactness included: fractions round-trip as ``"p/q"`` strings, ``∞`` as
a tagged object, and the structured state types (:class:`Act` actions,
tuples, :class:`TimeState` with its predictions) as tagged JSON
objects.  :class:`~repro.obs.instrument.TraceEvent` telemetry records
round-trip the same way, and :func:`events_to_jsonl` /
:func:`events_from_jsonl` wrap whole traces in a *versioned* JSONL
container (``python -m repro trace`` output) whose unknown versions are
rejected rather than misread.

Only the value shapes the library itself produces are supported; an
unknown type raises :class:`SerializationError` rather than degrading
silently.
"""

from __future__ import annotations

import json
import math
from fractions import Fraction
from typing import Any, Iterable, List

from repro.errors import ReproError
from repro.ioa.actions import Act
from repro.core.time_state import Prediction, TimeState
from repro.obs.instrument import TraceEvent
from repro.timed.timed_sequence import TimedEvent, TimedSequence

__all__ = [
    "SerializationError",
    "TRACE_SCHEMA_VERSION",
    "LEDGER_SCHEMA_VERSION",
    "encode_value",
    "decode_value",
    "run_to_json",
    "run_from_json",
    "events_to_jsonl",
    "events_from_jsonl",
    "LEDGER_SCHEMAS_READABLE",
    "ledger_entry_to_line",
    "ledger_entries_from_jsonl",
    "CACHE_SCHEMA_VERSION",
    "cache_entry_to_json",
    "cache_entry_from_json",
]

#: Version of the JSONL trace container written by
#: :func:`events_to_jsonl`; bumped whenever the event shape changes.
TRACE_SCHEMA_VERSION = 1

#: Version of the JSONL campaign-ledger entries written by
#: :mod:`repro.runner.ledger`; bumped whenever the entry shape changes.
#: Version 2 added writer-identity stamping (``host``/``pid`` on every
#: entry) for cross-host audit of distributed campaigns.
LEDGER_SCHEMA_VERSION = 2

#: Ledger schema versions the reader accepts.  Version 1 entries are a
#: strict subset of version 2 (no ``host``/``pid``), so old ledgers
#: stay resumable; genuinely unknown shapes are still rejected.
LEDGER_SCHEMAS_READABLE = frozenset({1, 2})

#: Version of on-disk verdict-cache entries written by
#: :mod:`repro.cache.store`; bumped whenever the entry shape changes.
CACHE_SCHEMA_VERSION = 1


class SerializationError(ReproError):
    """A value outside the supported shapes was (de)serialised."""


def encode_value(value: Any) -> Any:
    """Encode a state/time value into JSON-able form."""
    if value is None or isinstance(value, (str, int)) and not isinstance(value, bool):
        return value
    if isinstance(value, bool):
        return value
    if isinstance(value, Fraction):
        return {"__frac__": "{}/{}".format(value.numerator, value.denominator)}
    if isinstance(value, float):
        if math.isinf(value):
            return {"__inf__": 1 if value > 0 else -1}
        return {"__float__": repr(value)}
    if isinstance(value, Act):
        return {"__act__": value.name, "args": [encode_value(a) for a in value.args]}
    if isinstance(value, Prediction):
        return {"__pred__": [encode_value(value.ft), encode_value(value.lt)]}
    if isinstance(value, TimeState):
        return {
            "__tstate__": {
                "astate": encode_value(value.astate),
                "now": encode_value(value.now),
                "preds": [encode_value(p) for p in value.preds],
            }
        }
    if isinstance(value, TraceEvent):
        return {
            "__trace__": {
                "seq": value.seq,
                "name": value.name,
                "wall": encode_value(value.wall),
                "fields": {k: encode_value(v) for k, v in value.fields.items()},
            }
        }
    if isinstance(value, tuple):
        return {"__tuple__": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    raise SerializationError(
        "cannot serialise value of type {}: {!r}".format(type(value).__name__, value)
    )


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    if not isinstance(value, dict):
        return value
    if "__frac__" in value:
        numerator, denominator = value["__frac__"].split("/")
        return Fraction(int(numerator), int(denominator))
    if "__inf__" in value:
        return math.inf if value["__inf__"] > 0 else -math.inf
    if "__float__" in value:
        return float(value["__float__"])
    if "__act__" in value:
        return Act(value["__act__"], tuple(decode_value(a) for a in value["args"]))
    if "__pred__" in value:
        ft, lt = value["__pred__"]
        return Prediction(decode_value(ft), decode_value(lt))
    if "__tstate__" in value:
        body = value["__tstate__"]
        return TimeState(
            decode_value(body["astate"]),
            decode_value(body["now"]),
            tuple(decode_value(p) for p in body["preds"]),
        )
    if "__trace__" in value:
        body = value["__trace__"]
        return TraceEvent(
            seq=body["seq"],
            name=body["name"],
            wall=decode_value(body["wall"]),
            fields={k: decode_value(v) for k, v in body["fields"].items()},
        )
    if "__tuple__" in value:
        return tuple(decode_value(v) for v in value["__tuple__"])
    raise SerializationError("unknown tagged object: {!r}".format(sorted(value)))


def run_to_json(run: TimedSequence, indent: int = None) -> str:
    """Serialise a run (or any timed sequence) to a JSON string."""
    payload = {
        "states": [encode_value(s) for s in run.states],
        "events": [
            {"action": encode_value(ev.action), "time": encode_value(ev.time)}
            for ev in run.events
        ],
    }
    return json.dumps(payload, indent=indent)


def run_from_json(text: str) -> TimedSequence:
    """Reconstruct a timed sequence from :func:`run_to_json` output."""
    payload = json.loads(text)
    states = tuple(decode_value(s) for s in payload["states"])
    events = tuple(
        TimedEvent(decode_value(ev["action"]), decode_value(ev["time"]))
        for ev in payload["events"]
    )
    return TimedSequence(states, events)


def events_to_jsonl(events: Iterable[TraceEvent]) -> str:
    """Serialise a trace to JSONL: one header line carrying the schema
    version, then one encoded :class:`TraceEvent` per line."""
    lines = [json.dumps({"__trace_jsonl__": TRACE_SCHEMA_VERSION})]
    for ev in events:
        if not isinstance(ev, TraceEvent):
            raise SerializationError(
                "events_to_jsonl expects TraceEvent values, got {!r}".format(ev)
            )
        lines.append(json.dumps(encode_value(ev)))
    return "\n".join(lines) + "\n"


def events_from_jsonl(text: str) -> List[TraceEvent]:
    """Inverse of :func:`events_to_jsonl`.

    Rejects traces without a header or with an unknown schema version —
    silently misreading a future trace shape would be worse than
    failing.
    """
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise SerializationError("empty trace: missing schema header")
    header = json.loads(lines[0])
    if not isinstance(header, dict) or "__trace_jsonl__" not in header:
        raise SerializationError(
            "trace does not start with a __trace_jsonl__ schema header"
        )
    version = header["__trace_jsonl__"]
    if version != TRACE_SCHEMA_VERSION:
        raise SerializationError(
            "unsupported trace schema version {!r} (supported: {})".format(
                version, TRACE_SCHEMA_VERSION
            )
        )
    events = []
    for line in lines[1:]:
        value = decode_value(json.loads(line))
        if not isinstance(value, TraceEvent):
            raise SerializationError(
                "trace line is not a TraceEvent: {!r}".format(value)
            )
        events.append(value)
    return events


def ledger_entry_to_line(entry: dict) -> str:
    """Serialise one campaign-ledger entry to a self-describing JSONL
    line: every line carries the schema version and a ``kind``, so a
    ledger survives truncation anywhere (each line is independently
    meaningful) and future shapes are rejected rather than misread."""
    if not isinstance(entry, dict) or "kind" not in entry:
        raise SerializationError(
            "a ledger entry must be a dict with a 'kind', got {!r}".format(entry)
        )
    body = dict(entry)
    body["schema"] = LEDGER_SCHEMA_VERSION
    try:
        return json.dumps(body, sort_keys=True)
    except (TypeError, ValueError) as exc:
        raise SerializationError(
            "ledger entry is not JSON-serialisable: {}".format(exc)
        )


def ledger_entries_from_jsonl(text: str, tolerate_torn_tail: bool = True) -> List[dict]:
    """Parse ledger JSONL back into entry dicts.

    A campaign killed mid-write (SIGKILL, power loss) may leave a torn
    final line; with ``tolerate_torn_tail`` that one line is dropped —
    the per-line schema makes every *complete* line usable.  Torn or
    unknown-schema lines anywhere else raise
    :class:`SerializationError`.
    """
    raw_lines = [line for line in text.splitlines() if line.strip()]
    entries: List[dict] = []
    for index, line in enumerate(raw_lines):
        try:
            body = json.loads(line)
        except ValueError:
            if tolerate_torn_tail and index == len(raw_lines) - 1:
                break
            raise SerializationError(
                "ledger line {} is not valid JSON: {!r}".format(index + 1, line[:80])
            )
        if not isinstance(body, dict) or "kind" not in body:
            raise SerializationError(
                "ledger line {} is not an entry dict: {!r}".format(index + 1, line[:80])
            )
        if body.get("schema") not in LEDGER_SCHEMAS_READABLE:
            raise SerializationError(
                "unsupported ledger schema {!r} on line {} (supported: {})".format(
                    body.get("schema"),
                    index + 1,
                    ", ".join(str(v) for v in sorted(LEDGER_SCHEMAS_READABLE)),
                )
            )
        entries.append(body)
    return entries


def cache_entry_to_json(key: str, payload: dict, meta: dict) -> str:
    """Serialise one verdict-cache entry.

    The entry is self-describing: it carries the schema version, its own
    content-address ``key`` (so a file moved or copied to the wrong slot
    is detected on read), free-form plain-JSON ``payload`` (the cached
    verdict) and ``meta`` (fingerprint/engine provenance for humans and
    invalidation audits).
    """
    body = {
        "schema": CACHE_SCHEMA_VERSION,
        "key": key,
        "payload": payload,
        "meta": meta,
    }
    try:
        return json.dumps(body, sort_keys=True, indent=2) + "\n"
    except (TypeError, ValueError) as exc:
        raise SerializationError(
            "cache entry is not JSON-serialisable: {}".format(exc)
        )


def cache_entry_from_json(text: str, expected_key: str) -> dict:
    """Parse a verdict-cache entry back to its ``payload`` dict.

    Raises :class:`SerializationError` on torn/invalid JSON, an
    unsupported schema version, or a key mismatch — callers treat all
    three as a cache miss and recompute.
    """
    try:
        body = json.loads(text)
    except ValueError as exc:
        raise SerializationError("torn cache entry: {}".format(exc))
    if not isinstance(body, dict) or body.get("schema") != CACHE_SCHEMA_VERSION:
        raise SerializationError(
            "unsupported cache entry schema {!r} (supported: {})".format(
                body.get("schema") if isinstance(body, dict) else None,
                CACHE_SCHEMA_VERSION,
            )
        )
    if body.get("key") != expected_key:
        raise SerializationError(
            "cache entry key mismatch: stored {!r}, expected {!r}".format(
                body.get("key"), expected_key
            )
        )
    payload = body.get("payload")
    if not isinstance(payload, dict):
        raise SerializationError("cache entry payload is not a dict")
    return payload
