"""Machine-checking strong possibilities mappings.

The paper's mapping proofs (Lemmas 4.3 and 6.2) are per-step case
analyses: for every source step, the *witness* target step is obtained
by "applying the ``time(A, V)`` definition to ``u'``" on the same
``(π, t)`` and the same ``A``-step, after which two obligations remain:

- **enabledness** — the witness step must be permitted by the target's
  ``Ft``/``Lt`` windows (this is where a wrong requirement bound fails);
- **containment** — the witness state must lie back in the image.

:func:`check_mapping_on_run` discharges exactly those obligations along
a concrete execution of the source automaton;
:func:`check_mapping_exhaustive` discharges them for *all* executions
under a rational time discretisation (exhaustive for the grid
semantics).  :func:`check_chain_on_run` threads a witness through every
level of a mapping hierarchy simultaneously.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, List, Optional, Sequence, Tuple

from repro.errors import MappingCheckError, TimingViolationError
from repro.obs import instrument as _telemetry
from repro.par import engine as _engine

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults uses core)
    from repro.faults.budget import Budget
    from repro.par.engine import EngineConfig
from repro.timed.timed_sequence import TimedSequence
from repro.core.discretize import discrete_options
from repro.core.mappings import MappingChain, StrongPossibilitiesMapping
from repro.core.time_state import TimeState

__all__ = [
    "CheckOutcome",
    "check_mapping_on_run",
    "check_chain_on_run",
    "check_mapping_exhaustive",
]


@dataclass(frozen=True)
class CheckOutcome:
    """The verdict of a mapping check.

    ``exhausted_budget`` marks a *partial* verdict: a
    :class:`~repro.faults.budget.Budget` ran out before the check
    covered everything it was asked to.  Truthiness is unchanged —
    ``bool(outcome)`` is ``outcome.ok``, i.e. "no violation found in
    the portion checked" — so budget-guarded callers that need
    certainty must additionally consult :attr:`conclusive`.
    """

    ok: bool
    steps_checked: int
    detail: str = ""
    failing_source_state: Optional[TimeState] = None
    failing_target_state: Optional[TimeState] = None
    exhausted_budget: bool = False

    def __bool__(self) -> bool:
        return self.ok

    @property
    def conclusive(self) -> bool:
        """True when the verdict covers the whole requested check (no
        budget exhaustion).  A failure is always conclusive: the
        counterexample stands however little was explored."""
        return not self.ok or not self.exhausted_budget

    def raise_if_failed(self) -> "CheckOutcome":
        """Raise :class:`MappingCheckError` when the check failed."""
        if not self.ok:
            raise MappingCheckError(
                self.detail,
                source_state=self.failing_source_state,
                target_state=self.failing_target_state,
            )
        return self


def _initial_witness(
    mapping: StrongPossibilitiesMapping, source_start: TimeState
) -> Tuple[Optional[TimeState], Optional[CheckOutcome]]:
    """Definition 3.2 condition 1 for the unique start state over the
    same ``A``-state."""
    witness = mapping.target.initial(source_start.astate)
    if not mapping.contains(witness, source_start):
        return None, CheckOutcome(
            False,
            0,
            "initial condition fails for {}: {}".format(
                mapping.name, mapping.describe_failure(witness, source_start)
            ),
            failing_source_state=source_start,
            failing_target_state=witness,
        )
    return witness, None


def _witness_step(
    mapping: StrongPossibilitiesMapping,
    witness: TimeState,
    action: Hashable,
    time,
    source_post: TimeState,
    steps_done: int,
) -> Tuple[Optional[TimeState], Optional[CheckOutcome]]:
    """One simulation step: construct the target step and check both
    proof obligations."""
    _telemetry.incr("check.steps")
    try:
        next_witness = mapping.target.successor_matching(
            witness, action, time, source_post.astate
        )
    except TimingViolationError as exc:
        return None, CheckOutcome(
            False,
            steps_done,
            "target step not enabled for {} on ({!r}, {!r}): {}".format(
                mapping.name, action, time, exc
            ),
            failing_source_state=source_post,
            failing_target_state=witness,
        )
    if not mapping.contains(next_witness, source_post):
        return None, CheckOutcome(
            False,
            steps_done,
            "containment fails for {} after ({!r}, {!r}): {}".format(
                mapping.name, action, time,
                mapping.describe_failure(next_witness, source_post),
            ),
            failing_source_state=source_post,
            failing_target_state=next_witness,
        )
    return next_witness, None


def _budget_cut(steps: int) -> CheckOutcome:
    return CheckOutcome(
        True,
        steps,
        "budget exhausted after {} steps".format(steps),
        exhausted_budget=True,
    )


def _emit_outcome(check: str, outcome: CheckOutcome) -> CheckOutcome:
    """Telemetry terminal event: every check verdict — pass, fail, or
    budget cut — leaves a ``check.outcome`` trace event, so aborted
    checks are visible in traces rather than ending silently."""
    rec = _telemetry._ACTIVE
    if rec is not None:
        rec.incr("check.outcomes")
        rec.event(
            "check.outcome",
            check=check,
            ok=outcome.ok,
            steps=outcome.steps_checked,
            detail=outcome.detail,
            exhausted_budget=outcome.exhausted_budget,
        )
    return outcome


def check_mapping_on_run(
    mapping: StrongPossibilitiesMapping,
    run: TimedSequence,
    budget: Optional["Budget"] = None,
) -> CheckOutcome:
    """Check a mapping along one execution of the source automaton.

    ``run`` must be a :class:`TimedSequence` whose states are
    :class:`TimeState` values of ``mapping.source`` (as produced by the
    simulator).  With a ``budget``, each step charges one unit; on
    exhaustion the outcome so far is returned flagged
    ``exhausted_budget``.
    """
    witness, failure = _initial_witness(mapping, run.first_state)
    if failure is not None:
        return _emit_outcome("mapping_on_run", failure)
    steps = 0
    for _pre, event, post in run.triples():
        if budget is not None and not budget.charge_step():
            return _emit_outcome("mapping_on_run", _budget_cut(steps))
        witness, failure = _witness_step(
            mapping, witness, event.action, event.time, post, steps
        )
        if failure is not None:
            return _emit_outcome("mapping_on_run", failure)
        steps += 1
    return _emit_outcome("mapping_on_run", CheckOutcome(True, steps))


def check_chain_on_run(
    chain: MappingChain,
    run: TimedSequence,
    budget: Optional["Budget"] = None,
) -> CheckOutcome:
    """Check every level of a mapping hierarchy in lockstep along one
    execution of the chain's source automaton (paper Section 6.3).
    Each (event, level) witness step charges one budget unit."""
    witnesses: List[TimeState] = []
    previous: TimeState = run.first_state
    for mapping in chain:
        witness, failure = _initial_witness(mapping, previous)
        if failure is not None:
            return _emit_outcome("chain_on_run", failure)
        witnesses.append(witness)
        previous = witness
    steps = 0
    for _pre, event, post in run.triples():
        previous = post
        for level, mapping in enumerate(chain):
            if budget is not None and not budget.charge_step():
                return _emit_outcome("chain_on_run", _budget_cut(steps))
            witness, failure = _witness_step(
                mapping, witnesses[level], event.action, event.time, previous, steps
            )
            if failure is not None:
                return _emit_outcome("chain_on_run", failure)
            witnesses[level] = witness
            previous = witness
        steps += 1
    return _emit_outcome("chain_on_run", CheckOutcome(True, steps))


def check_mapping_exhaustive(
    mapping: StrongPossibilitiesMapping,
    grid,
    horizon,
    max_pairs: int = 200_000,
    budget: Optional["Budget"] = None,
    engine: Optional["EngineConfig"] = None,
) -> CheckOutcome:
    """Check a mapping on *every* execution of the source automaton
    whose event times are multiples of ``grid``, up to absolute time
    ``horizon``.

    Explores the product of source states and deterministic witnesses
    breadth-first.  Exhaustive for the grid semantics; raises the same
    two obligations as :func:`check_mapping_on_run` at every step.

    ``engine`` selects the serial or parallel obligation scheduler
    (``None`` defers to the process-wide choice); the parallel engine
    of :mod:`repro.par.obligations` returns byte-identical outcomes.
    """
    config = _engine.resolve_engine(engine)
    if config.parallel:
        from repro.par.obligations import check_mapping_exhaustive_parallel

        return check_mapping_exhaustive_parallel(
            mapping,
            grid,
            horizon,
            max_pairs=max_pairs,
            budget=budget,
            config=config,
        )
    rec = _telemetry._ACTIVE
    seen = set()
    frontier: deque = deque()
    for source_start in mapping.source.start_states():
        witness, failure = _initial_witness(mapping, source_start)
        if failure is not None:
            return _emit_outcome("mapping_exhaustive", failure)
        pair = (source_start, witness)
        if pair not in seen:
            if budget is not None and not budget.charge_state():
                return _emit_outcome("mapping_exhaustive", _budget_cut(0))
            seen.add(pair)
            frontier.append(pair)
    steps = 0
    while frontier:
        source_state, witness = frontier.popleft()
        for action, time in discrete_options(mapping.source, source_state, grid, horizon):
            for source_post in mapping.source.successors(source_state, action, time):
                if budget is not None and not budget.charge_step():
                    return _emit_outcome("mapping_exhaustive", _budget_cut(steps))
                next_witness, failure = _witness_step(
                    mapping, witness, action, time, source_post, steps
                )
                if failure is not None:
                    return _emit_outcome("mapping_exhaustive", failure)
                steps += 1
                pair = (source_post, next_witness)
                if pair in seen:
                    if rec is not None:
                        rec.incr("check.cache_hits")
                    continue
                if len(seen) >= max_pairs:
                    return _emit_outcome(
                        "mapping_exhaustive",
                        CheckOutcome(
                            True,
                            steps,
                            "truncated at {} state pairs".format(max_pairs),
                        ),
                    )
                if budget is not None and not budget.charge_state():
                    return _emit_outcome("mapping_exhaustive", _budget_cut(steps))
                seen.add(pair)
                frontier.append(pair)
    return _emit_outcome(
        "mapping_exhaustive",
        CheckOutcome(
            True, steps, "exhaustive over grid={!r} horizon={!r}".format(grid, horizon)
        ),
    )
