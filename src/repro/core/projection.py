"""Projection between executions of ``time(A, U)`` and timed sequences
of ``A`` (paper Lemmas 3.2 / 3.3).

An execution of ``time(A, U)`` is represented as a
:class:`~repro.timed.timed_sequence.TimedSequence` whose states are
:class:`~repro.core.time_state.TimeState` values.  ``project`` keeps the
``(action, time)`` pairs and maps every state to its ``A``-component;
``lift`` is the inverse construction from the proof of Lemma 3.2(1).
"""

from __future__ import annotations

from typing import Hashable

from repro.errors import ExecutionError, TimingViolationError
from repro.timed.timed_sequence import TimedSequence
from repro.core.time_automaton import PredictiveTimeAutomaton
from repro.core.time_state import TimeState

__all__ = ["project", "lift", "validate_run"]


def project(run: TimedSequence) -> TimedSequence:
    """The paper's ``project(α)``: map each :class:`TimeState` to its
    ``A``-state, keeping the (action, time) pairs intact."""
    states = []
    for state in run.states:
        if not isinstance(state, TimeState):
            raise ExecutionError(
                "project expects TimeState states, got {!r}".format(state)
            )
        states.append(state.astate)
    return TimedSequence(tuple(states), run.events)


def lift(automaton: PredictiveTimeAutomaton, seq: TimedSequence) -> TimedSequence:
    """Lemma 3.2(1): the unique execution ``α`` of ``time(A, U)`` with
    ``project(α) = seq``, provided ``seq`` is a timed semi-execution of
    ``(A, U)``.

    Raises :class:`TimingViolationError` (with the violated clause) when
    no such execution exists — i.e. when ``seq`` is *not* a timed
    semi-execution.
    """
    start = automaton.initial(seq.first_state)
    current = start
    states = [start]
    for pre_astate, event, post_astate in seq.triples():
        del pre_astate  # the time-state already carries it
        current = automaton.successor_matching(
            current, event.action, event.time, post_astate
        )
        states.append(current)
    return TimedSequence(tuple(states), seq.events)


def validate_run(automaton: PredictiveTimeAutomaton, run: TimedSequence) -> None:
    """Check that ``run`` is an execution of ``time(A, U)`` beginning in
    a start state; raises on the first bad step."""
    first = run.first_state
    if not isinstance(first, TimeState):
        raise ExecutionError("runs of time(A, U) must consist of TimeState states")
    if first != automaton.initial(first.astate):
        raise ExecutionError(
            "run does not begin in the start state over {!r}".format(first.astate)
        )
    for index, (pre, event, post) in enumerate(run.triples()):
        if not automaton.is_step(pre, event.action, event.time, post):
            raise ExecutionError(
                "run step {} = ({!r}, {!r}) is not a step of {}".format(
                    index, event.action, event.time, automaton.name
                )
            )
