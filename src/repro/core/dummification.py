"""Dummification (paper Section 5).

Mapping proofs need all timed executions to be infinite (Theorem 3.4
quantifies over infinite executions).  Systems like the signal relay
have finite timed executions; the fix is to compose in a *dummy*
component whose single ``NULL`` output has a finite upper bound, forcing
every timed execution to keep going (Lemma 5.1), while ``undum`` erases
the dummy from executions (Lemmas 5.2/5.3) so conclusions transfer back
to the original system (Theorem 5.4).
"""

from __future__ import annotations

from typing import Hashable, Optional, Sequence, Tuple

from repro.errors import ExecutionError
from repro.ioa.actions import Act, Kind
from repro.ioa.automaton import IOAutomaton
from repro.ioa.composition import Composition
from repro.ioa.guarded import ActionSpec, GuardedAutomaton
from repro.ioa.partition import Partition
from repro.timed.boundmap import TimedAutomaton
from repro.timed.conditions import TimingCondition
from repro.timed.interval import Interval
from repro.timed.timed_sequence import TimedSequence

__all__ = [
    "NULL",
    "DUMMY_STATE",
    "dummy_automaton",
    "dummify",
    "undum",
    "dummify_condition",
    "dummify_conditions",
]

#: The dummy's single output action.
NULL = Act("NULL")

#: The dummy's single state.
DUMMY_STATE = "dummystate"


def dummy_automaton(null_action: Hashable = NULL) -> GuardedAutomaton:
    """The one-state *dummy* component: ``null_action`` always enabled,
    no effect."""
    return GuardedAutomaton(
        name="dummy",
        start=[DUMMY_STATE],
        specs=[ActionSpec(null_action, Kind.OUTPUT)],
        partition=Partition.from_pairs([("NULL", [null_action])]),
    )


def dummify(
    timed: TimedAutomaton,
    interval: Interval = Interval(0, 1),
    null_action: Hashable = NULL,
) -> TimedAutomaton:
    """The dummification ``(Ã, b̃)`` of ``(A, b)``.

    ``Ã`` composes ``A`` with the dummy (states become
    ``(a_state, DUMMY_STATE)``); ``b̃`` extends ``b`` with the interval
    for the new ``NULL`` class.  The interval must have a finite upper
    bound (``n_2 < ∞``), otherwise the dummy would not force progress.
    """
    if not interval.is_upper_bounded:
        raise ExecutionError("the dummy's interval must have a finite upper bound")
    composed = Composition(
        [timed.automaton, dummy_automaton(null_action)],
        name="dummified({})".format(timed.automaton.name),
    )
    return TimedAutomaton(composed, timed.boundmap.extended("NULL", interval))


def undum(seq: TimedSequence, null_action: Hashable = NULL) -> TimedSequence:
    """The paper's ``undum``: drop the dummy state component and the
    ``NULL`` steps from a timed sequence of ``Ã``."""
    states = [seq.first_state[0]]
    events = []
    for pre, event, post in seq.triples():
        if event.action == null_action:
            if post[0] != pre[0]:
                raise ExecutionError(
                    "NULL step changed the A-state: {!r} -> {!r}".format(
                        pre[0], post[0]
                    )
                )
            continue
        events.append(event)
        states.append(post[0])
    return TimedSequence(tuple(states), tuple(events))


def dummify_condition(
    condition: TimingCondition, null_action: Hashable = NULL
) -> TimingCondition:
    """The lifted condition ``Ũ`` on ``Ã`` (Section 5): triggers and
    disabling refer to the ``A``-component, ``NULL`` steps never trigger
    and ``NULL`` is never in ``Π̃``."""
    inner_starts = condition.starts
    inner_triggers = condition.triggers
    inner_in_pi = condition.in_pi
    inner_disables = condition.disables

    def starts(state: Hashable) -> bool:
        return inner_starts(state[0])

    def triggers(pre: Hashable, action: Hashable, post: Hashable) -> bool:
        if action == null_action:
            return False
        return inner_triggers(pre[0], action, post[0])

    def in_pi(action: Hashable) -> bool:
        return action != null_action and inner_in_pi(action)

    def disables(state: Hashable) -> bool:
        return inner_disables(state[0])

    return TimingCondition(
        name=condition.name,
        interval=condition.interval,
        starts=starts,
        triggers=triggers,
        in_pi=in_pi,
        disables=disables,
    )


def dummify_conditions(
    conditions: Sequence[TimingCondition], null_action: Hashable = NULL
) -> Tuple[TimingCondition, ...]:
    """Lift a whole condition set ``U`` to ``Ũ``."""
    return tuple(dummify_condition(c, null_action) for c in conditions)
