"""The general ``time(A, U)`` construction (paper Section 3.1).

Given an I/O automaton ``A`` and a set ``U`` of timing conditions,
``time(A, U)`` is an ordinary I/O automaton over actions ``(π, t)``
whose state carries the predictive components ``Ct`` and
``Ft(U)/Lt(U)``.  Steps enforce, literally, conditions 1–4 of the
paper's definition:

1. ``(s'.As, π, s.As)`` is a step of ``A``;
2. ``s'.Ct ≤ t = s.Ct``;
3. for ``π ∈ Π(U)``: ``Ft ≤ t ≤ Lt``, and the prediction is refreshed
   on trigger steps or reset to the default otherwise;
4. for ``π ∉ Π(U)``: ``t ≤ Lt``, trigger steps impose
   ``(t + b_l, min(Lt, t + b_u))``, disabling steps reset to the
   default, and other steps leave the prediction unchanged.

Because its actions carry a real-valued time, ``time(A, U)`` is not an
enumerable :class:`~repro.ioa.automaton.IOAutomaton`; it exposes its own
step API (:meth:`successors`, :meth:`is_step`, :meth:`time_window`).
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.errors import TimingConditionError, TimingViolationError
from repro.ioa.automaton import IOAutomaton
from repro.timed.boundmap import TimedAutomaton
from repro.timed.conditions import TimingCondition, boundmap_conditions
from repro.timed.timed_sequence import TimedSequence
from repro.core.time_state import DEFAULT_PREDICTION, Prediction, TimeState

__all__ = ["PredictiveTimeAutomaton", "time_of_conditions", "time_of_boundmap"]


class PredictiveTimeAutomaton:
    """The automaton ``time(A, U)`` for a fixed condition tuple ``U``."""

    def __init__(
        self,
        base: IOAutomaton,
        conditions: Sequence[TimingCondition],
        name: Optional[str] = None,
    ):
        self.base = base
        self.conditions: Tuple[TimingCondition, ...] = tuple(conditions)
        names = [c.name for c in self.conditions]
        if len(set(names)) != len(names):
            raise TimingConditionError(
                "condition names must be unique, got {!r}".format(names)
            )
        self._index: Dict[str, int] = {c.name: i for i, c in enumerate(self.conditions)}
        self.name = name or "time({}, {})".format(base.name, names)

    # ------------------------------------------------------------------
    # Condition/state component access
    # ------------------------------------------------------------------

    def index_of(self, condition_name: str) -> int:
        """Position of a condition in state ``preds`` tuples."""
        try:
            return self._index[condition_name]
        except KeyError:
            raise TimingConditionError(
                "{} has no condition named {!r}".format(self.name, condition_name)
            ) from None

    def condition(self, condition_name: str) -> TimingCondition:
        return self.conditions[self.index_of(condition_name)]

    def ft(self, state: TimeState, condition_name: str):
        """``state.Ft(U)`` by condition name."""
        return state.preds[self.index_of(condition_name)].ft

    def lt(self, state: TimeState, condition_name: str):
        """``state.Lt(U)`` by condition name."""
        return state.preds[self.index_of(condition_name)].lt

    # ------------------------------------------------------------------
    # Start states
    # ------------------------------------------------------------------

    def initial(self, astate: Hashable) -> TimeState:
        """The start state of ``time(A, U)`` over the start state
        ``astate`` of ``A``: triggered conditions predict
        ``(b_l, b_u)``; others hold the default ``(0, ∞)``."""
        preds: List[Prediction] = []
        for cond in self.conditions:
            if cond.starts(astate):
                cond.check_start_state(astate)
                preds.append(Prediction(cond.lower, cond.upper))
            else:
                preds.append(DEFAULT_PREDICTION)
        return TimeState(astate, 0, tuple(preds))

    def start_states(self) -> Iterable[TimeState]:
        for astate in self.base.start_states():
            yield self.initial(astate)

    # ------------------------------------------------------------------
    # Steps
    # ------------------------------------------------------------------

    def time_violation(self, state: TimeState, action: Hashable, t) -> Optional[str]:
        """The reason ``(action, t)`` is time-forbidden in ``state``, or
        None when conditions 2, 3(a) and 4(a) all hold."""
        if t < state.now:
            return "time {!r} precedes Ct = {!r}".format(t, state.now)
        for cond, pred in zip(self.conditions, state.preds):
            if cond.in_pi(action):
                if not (pred.ft <= t <= pred.lt):
                    return (
                        "condition {!r} requires t in [{!r}, {!r}], got {!r}".format(
                            cond.name, pred.ft, pred.lt, t
                        )
                    )
            elif t > pred.lt:
                return (
                    "condition {!r} requires an earlier Π event by Lt = {!r}, "
                    "but t = {!r}".format(cond.name, pred.lt, t)
                )
        return None

    def _next_prediction(
        self,
        cond: TimingCondition,
        pred: Prediction,
        pre_astate: Hashable,
        action: Hashable,
        post_astate: Hashable,
        t,
    ) -> Prediction:
        """Conditions 3(b)–(c) and 4(b)–(d) for one condition."""
        trigger = cond.triggers(pre_astate, action, post_astate)
        if trigger:
            cond.check_trigger_step(pre_astate, action, post_astate)
        if cond.in_pi(action):
            if trigger:
                return Prediction(t + cond.lower, t + cond.upper)
            return DEFAULT_PREDICTION
        if trigger:
            return Prediction(t + cond.lower, min(pred.lt, t + cond.upper))
        if cond.disables(post_astate):
            return DEFAULT_PREDICTION
        return pred

    def successors(self, state: TimeState, action: Hashable, t) -> List[TimeState]:
        """All post-states of the timed action ``(action, t)``; empty when
        the action is not enabled (in ``A`` or time-wise)."""
        if self.time_violation(state, action, t) is not None:
            return []
        posts: List[TimeState] = []
        seen = set()
        for post_astate in self.base.transitions(state.astate, action):
            if post_astate in seen:
                continue
            seen.add(post_astate)
            preds = tuple(
                self._next_prediction(cond, pred, state.astate, action, post_astate, t)
                for cond, pred in zip(self.conditions, state.preds)
            )
            posts.append(TimeState(post_astate, t, preds))
        return posts

    def successor(self, state: TimeState, action: Hashable, t) -> TimeState:
        """The unique post-state; raises :class:`TimingViolationError`
        with the violated clause when the step is forbidden, and fails
        when ``A`` is nondeterministic here (use
        :meth:`successor_matching` then)."""
        reason = self.time_violation(state, action, t)
        if reason is not None:
            raise TimingViolationError(
                "{}: ({!r}, {!r}) not enabled in {!r}: {}".format(
                    self.name, action, t, state, reason
                )
            )
        posts = self.successors(state, action, t)
        if not posts:
            raise TimingViolationError(
                "{}: action {!r} is not enabled in A-state {!r}".format(
                    self.name, action, state.astate
                )
            )
        if len(posts) > 1:
            raise TimingViolationError(
                "{}: action {!r} is nondeterministic in A-state {!r}; use "
                "successor_matching".format(self.name, action, state.astate)
            )
        return posts[0]

    def successor_matching(
        self, state: TimeState, action: Hashable, t, post_astate: Hashable
    ) -> TimeState:
        """The post-state whose ``A``-component equals ``post_astate`` —
        the step the mapping proofs construct ("apply the time(A, V)
        definition to u', matching the A-step")."""
        for post in self.successors(state, action, t):
            if post.astate == post_astate:
                return post
        reason = self.time_violation(state, action, t)
        raise TimingViolationError(
            "{}: no step ({!r}, {!r}) from {!r} reaching A-state {!r}{}".format(
                self.name,
                action,
                t,
                state,
                post_astate,
                "" if reason is None else " ({})".format(reason),
            )
        )

    def is_step(self, pre: TimeState, action: Hashable, t, post: TimeState) -> bool:
        """True if ``(pre, (action, t), post)`` is a step of ``time(A, U)``."""
        return any(post == candidate for candidate in self.successors(pre, action, t))

    # ------------------------------------------------------------------
    # Scheduling helpers (used by the simulator and the discretizer)
    # ------------------------------------------------------------------

    def deadline(self, state: TimeState):
        """``min_U Lt(U)``: no event may occur later, and if finite, some
        event *must* occur by then (the liveness half of an upper bound)."""
        current = math.inf
        for pred in state.preds:
            if pred.lt < current:
                current = pred.lt
        return current

    def time_window(self, state: TimeState, action: Hashable) -> Optional[Tuple[object, object]]:
        """The interval of times at which ``action`` may occur next, or
        None when the window is empty.  Lower end: ``Ct`` and every
        ``Ft(U)`` with ``π ∈ Π(U)``; upper end: every ``Lt(U)``."""
        lo = state.now
        hi = self.deadline(state)
        for cond, pred in zip(self.conditions, state.preds):
            if cond.in_pi(action) and pred.ft > lo:
                lo = pred.ft
        if lo > hi:
            return None
        return (lo, hi)

    def schedulable_actions(self, state: TimeState) -> List[Tuple[Hashable, object, object]]:
        """The actions enabled in ``state.astate`` whose time window is
        non-empty, with their windows: ``[(action, lo, hi), …]``."""
        result = []
        for action in self.base.enabled_actions(state.astate):
            window = self.time_window(state, action)
            if window is not None:
                result.append((action, window[0], window[1]))
        return result

    def __repr__(self) -> str:
        return "<PredictiveTimeAutomaton {}>".format(self.name)


def time_of_conditions(
    base: IOAutomaton,
    conditions: Sequence[TimingCondition],
    name: Optional[str] = None,
) -> PredictiveTimeAutomaton:
    """Build ``time(A, U)`` from an automaton and conditions."""
    return PredictiveTimeAutomaton(base, conditions, name=name)


def time_of_boundmap(timed: TimedAutomaton, name: Optional[str] = None) -> PredictiveTimeAutomaton:
    """The special case ``time(A, b) = time(A, U_b)`` (Section 3.2),
    instantiating the general construction on the boundmap conditions."""
    conditions = boundmap_conditions(timed)
    return PredictiveTimeAutomaton(
        timed.automaton,
        conditions,
        name=name or "time({}, b)".format(timed.automaton.name),
    )
