"""The explicit special case ``time(A, b)`` (paper Section 3.2).

This is an *independent* implementation of the boundmap case, written
directly from the paper's instantiated rules (enabled/disabled classes,
no general timing-condition machinery).  The test suite cross-validates
it step-for-step against the general construction
``time(A, U_b)`` of :mod:`repro.core.time_automaton`; any divergence
would expose a misreading of one of the two definitions.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable, List, Optional, Tuple

from repro.errors import TimingViolationError
from repro.timed.boundmap import TimedAutomaton
from repro.core.time_state import DEFAULT_PREDICTION, Prediction, TimeState

__all__ = ["ExplicitBoundmapTime"]


class ExplicitBoundmapTime:
    """``time(A, b)`` implemented from the Section 3.2 rules verbatim.

    State ``preds`` are indexed by partition class order; component ``i``
    is ``(Ft(C_i), Lt(C_i))``.
    """

    def __init__(self, timed: TimedAutomaton):
        self.timed = timed
        self.base = timed.automaton
        self.classes = timed.classes()
        self.name = "explicit-time({}, b)".format(self.base.name)

    # -- start states ---------------------------------------------------

    def initial(self, astate: Hashable) -> TimeState:
        preds: List[Prediction] = []
        for cls in self.classes:
            interval = self.timed.class_interval(cls)
            if self.base.class_enabled(astate, cls):
                preds.append(Prediction(interval.lo, interval.hi))
            else:
                preds.append(DEFAULT_PREDICTION)
        return TimeState(astate, 0, tuple(preds))

    def start_states(self) -> Iterable[TimeState]:
        for astate in self.base.start_states():
            yield self.initial(astate)

    # -- steps ------------------------------------------------------------

    def _class_of(self, action: Hashable):
        return self.base.partition.class_of(action)

    def time_violation(self, state: TimeState, action: Hashable, t) -> Optional[str]:
        """Conditions 2, 3(a) and 4(a) of the Section 3.2 definition."""
        if t < state.now:
            return "time {!r} precedes Ct = {!r}".format(t, state.now)
        own = self._class_of(action)
        for i, cls in enumerate(self.classes):
            pred = state.preds[i]
            if own is not None and cls.name == own.name:
                if not (pred.ft <= t <= pred.lt):
                    return "class {!r} window [{!r}, {!r}] excludes {!r}".format(
                        cls.name, pred.ft, pred.lt, t
                    )
            elif t > pred.lt:
                return "class {!r} deadline Lt = {!r} exceeded by t = {!r}".format(
                    cls.name, pred.lt, t
                )
        return None

    def successors(self, state: TimeState, action: Hashable, t) -> List[TimeState]:
        if self.time_violation(state, action, t) is not None:
            return []
        own = self._class_of(action)
        posts: List[TimeState] = []
        seen = set()
        for post_astate in self.base.transitions(state.astate, action):
            if post_astate in seen:
                continue
            seen.add(post_astate)
            preds: List[Prediction] = []
            for i, cls in enumerate(self.classes):
                interval = self.timed.class_interval(cls)
                pred = state.preds[i]
                now_enabled = self.base.class_enabled(post_astate, cls)
                if own is not None and cls.name == own.name:
                    # Condition 3: π belongs to this class.
                    if now_enabled:
                        preds.append(Prediction(t + interval.lo, t + interval.hi))
                    else:
                        preds.append(DEFAULT_PREDICTION)
                else:
                    # Condition 4: π outside this class.
                    was_enabled = self.base.class_enabled(state.astate, cls)
                    if now_enabled and not was_enabled:
                        preds.append(Prediction(t + interval.lo, t + interval.hi))
                    elif now_enabled and was_enabled:
                        preds.append(pred)
                    else:
                        preds.append(DEFAULT_PREDICTION)
            posts.append(TimeState(post_astate, t, tuple(preds)))
        return posts

    def is_step(self, pre: TimeState, action: Hashable, t, post: TimeState) -> bool:
        return any(post == candidate for candidate in self.successors(pre, action, t))

    def successor(self, state: TimeState, action: Hashable, t) -> TimeState:
        posts = self.successors(state, action, t)
        if len(posts) != 1:
            raise TimingViolationError(
                "{}: expected exactly one successor for ({!r}, {!r}), got {}".format(
                    self.name, action, t, len(posts)
                )
            )
        return posts[0]
