"""The completeness construction (paper Section 7, Theorem 7.1).

If every timed execution of ``(A, b)`` satisfies the conditions ``U``,
then the *canonical* mapping

    ``u ∈ f(s)  ⇔  ∀Ũ: u.Lt(Ũ) ≥ sup { first_Ũ(α) | α ∈ Ext(s) }``
    ``           and  u.Ft(Ũ) ≤ inf { first_ΠŨ(α) | α ∈ Ext(s) }``

is a strong possibilities mapping from ``time(Ã, b̃)`` to
``time(Ã, Ũ)``.  Here ``Ext(s)`` is the set of admissible extensions of
``s``, ``first_Ũ`` is the first time an action of ``Π(Ũ)`` *or* a state
of ``S(Ũ)`` occurs, and ``first_ΠŨ`` is the first time a ``Π(Ũ)``
action occurs with no earlier ``S(Ũ)`` state.

The suprema/infima over the (uncountable) extension set are not
computable in general; this module provides two estimators:

- :class:`ExhaustiveFirstEstimator` — exact for the rational-grid
  semantics, by memoised search over all grid extensions;
- :class:`SamplingFirstEstimator` — Monte-Carlo over simulated
  extensions, to be combined with slack in :class:`CanonicalMapping`.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Optional, Tuple

from repro.errors import SchedulingDeadlockError
from repro.timed.conditions import TimingCondition
from repro.core.discretize import discrete_options
from repro.core.mappings import StrongPossibilitiesMapping
from repro.core.time_automaton import PredictiveTimeAutomaton
from repro.core.time_state import TimeState

__all__ = [
    "ExhaustiveFirstEstimator",
    "SamplingFirstEstimator",
    "CanonicalMapping",
]


class ExhaustiveFirstEstimator:
    """Exact ``sup first`` / ``inf first_Π`` over all grid extensions.

    ``window`` is the look-ahead beyond ``state.now``; choose it larger
    than every finite deadline of the conditions of interest, so that
    any triggered obligation resolves inside the window (beyond it the
    estimator reports ``∞``, which is exact for never-resolving
    branches and safely over-approximate otherwise).

    Cycles can only occur at a constant ``now`` (every time-advancing
    step leads to a fresh state); extensions looping forever at constant
    time are not admissible, so in-progress revisits are ignored.
    """

    def __init__(
        self,
        automaton: PredictiveTimeAutomaton,
        grid,
        window,
    ):
        self.automaton = automaton
        self.grid = grid
        self.window = window

    def first_bounds(self, state: TimeState, condition: TimingCondition):
        """``(sup first_Ũ, inf first_ΠŨ)`` from ``state``."""
        cap = state.now + self.window
        sup_memo: Dict[TimeState, Optional[object]] = {}
        inf_memo: Dict[TimeState, Optional[object]] = {}
        sup = self._sup_first(state, condition, cap, sup_memo, set())
        inf = self._inf_first_pi(state, condition, cap, inf_memo, set())
        return (math.inf if sup is None else sup, math.inf if inf is None else inf)

    def _successor_steps(self, state: TimeState, cap):
        for action, t in discrete_options(self.automaton, state, self.grid, cap):
            for post in self.automaton.successors(state, action, t):
                yield action, t, post

    def _sup_first(self, state, condition, cap, memo, stack):
        if condition.disables(state.astate):
            return state.now
        if state.now > cap:
            return math.inf
        if state in memo:
            return memo[state]
        if state in stack:
            return None  # constant-time cycle: not an admissible suffix
        stack.add(state)
        best = None
        saw_step = False
        for action, t, post in self._successor_steps(state, cap):
            if post == state:
                continue  # timed self-loop, never the whole suffix
            saw_step = True
            if condition.in_pi(action) or condition.disables(post.astate):
                candidate = t
            else:
                candidate = self._sup_first(post, condition, cap, memo, stack)
            if candidate is not None and (best is None or candidate > best):
                best = candidate
        stack.discard(state)
        if not saw_step:
            best = self._no_step_value(state)
        memo[state] = best
        return best

    def _no_step_value(self, state):
        """Value when no grid step exists inside the window: ``∞`` when
        the state is quiescent or its next events lie beyond the
        look-ahead cap (unresolved); a refinement error only when the
        continuous automaton itself is stuck against a deadline."""
        if self.automaton.schedulable_actions(state):
            return math.inf  # events exist, but beyond the cap: unresolved
        if math.isinf(self.automaton.deadline(state)):
            return math.inf  # quiescent: no event ever occurs
        raise SchedulingDeadlockError(
            "no step from {!r} despite a finite deadline; refine the "
            "grid".format(state)
        )

    def _inf_first_pi(self, state, condition, cap, memo, stack):
        if condition.disables(state.astate):
            return math.inf  # an S-state precedes any Π action
        if state.now > cap:
            return math.inf
        if state in memo:
            return memo[state]
        if state in stack:
            return None
        stack.add(state)
        best = None
        saw_step = False
        for action, t, post in self._successor_steps(state, cap):
            if post == state:
                continue
            saw_step = True
            if condition.in_pi(action):
                candidate = t
            elif condition.disables(post.astate):
                candidate = math.inf
            else:
                candidate = self._inf_first_pi(post, condition, cap, memo, stack)
            if candidate is not None and (best is None or candidate < best):
                best = candidate
        stack.discard(state)
        if not saw_step:
            best = self._no_step_value(state)
        memo[state] = best
        return best


class SamplingFirstEstimator:
    """Monte-Carlo ``sup``/``inf`` estimates over simulated extensions.

    Under-approximates the supremum and over-approximates the infimum;
    pair with slack in :class:`CanonicalMapping`.  Results are memoised
    per (state, condition) so repeated containment checks stay cheap.
    """

    def __init__(self, automaton, strategy_factory, runs: int = 20, max_steps: int = 400):
        self.automaton = automaton
        self.strategy_factory = strategy_factory
        self.runs = runs
        self.max_steps = max_steps
        self._memo: Dict[Tuple[TimeState, str], Tuple[object, object]] = {}

    def first_bounds(self, state: TimeState, condition: TimingCondition):
        key = (state, condition.name)
        if key in self._memo:
            return self._memo[key]
        from repro.sim.scheduler import Simulator  # local import: sim builds on core

        if condition.disables(state.astate):
            result = (state.now, math.inf)
            self._memo[key] = result
            return result
        sup_estimate = None
        inf_estimate = None
        for seed in range(self.runs):
            simulator = Simulator(self.automaton, self.strategy_factory(seed))
            run = simulator.run(max_steps=self.max_steps, from_state=state)
            first_u, first_pi = _firsts_along(run, condition)
            if first_u is not None and (sup_estimate is None or first_u > sup_estimate):
                sup_estimate = first_u
            if inf_estimate is None or first_pi < inf_estimate:
                inf_estimate = first_pi
        result = (
            math.inf if sup_estimate is None else sup_estimate,
            math.inf if inf_estimate is None else inf_estimate,
        )
        self._memo[key] = result
        return result


def _firsts_along(run, condition):
    """``(first_Ũ, first_ΠŨ)`` along one concrete extension (the run's
    start state is the extension's ``s_0``); ``first_Ũ`` is None when
    unresolved within the run."""
    first_u = None
    first_pi = math.inf
    disabling_seen = False
    for _pre, event, post in run.triples():
        hit_pi = condition.in_pi(event.action)
        hit_s = condition.disables(post.astate)
        if first_u is None and (hit_pi or hit_s):
            first_u = event.time
        if not disabling_seen and hit_pi:
            first_pi = event.time
            break
        if hit_s:
            disabling_seen = True
        if first_u is not None and disabling_seen:
            break
    return first_u, first_pi


class CanonicalMapping(StrongPossibilitiesMapping):
    """The Theorem 7.1 mapping, with pluggable ``first`` estimators.

    ``upper_slack``/``lower_slack`` relax the two inequalities to absorb
    estimation error when a sampling estimator is used; keep them at 0
    with :class:`ExhaustiveFirstEstimator`.
    """

    def __init__(
        self,
        source: PredictiveTimeAutomaton,
        target: PredictiveTimeAutomaton,
        estimator,
        upper_slack=0,
        lower_slack=0,
        name: Optional[str] = None,
    ):
        super().__init__(source, target, name=name or "canonical")
        self.estimator = estimator
        self.upper_slack = upper_slack
        self.lower_slack = lower_slack

    def image_contains(self, target_state: TimeState, source_state: TimeState) -> bool:
        for cond in self.target.conditions:
            sup_first, inf_first_pi = self.estimator.first_bounds(source_state, cond)
            lt = self.target.lt(target_state, cond.name)
            ft = self.target.ft(target_state, cond.name)
            if not math.isinf(sup_first) and lt < sup_first - self.upper_slack:
                return False
            if math.isinf(sup_first) and not math.isinf(lt):
                return False
            if ft > inf_first_pi + self.lower_slack:
                return False
        return True

    def describe_failure(self, target_state: TimeState, source_state: TimeState) -> str:
        if target_state.astate != source_state.astate:
            return super().describe_failure(target_state, source_state)
        problems = []
        for cond in self.target.conditions:
            sup_first, inf_first_pi = self.estimator.first_bounds(source_state, cond)
            lt = self.target.lt(target_state, cond.name)
            ft = self.target.ft(target_state, cond.name)
            if (not math.isinf(sup_first) and lt < sup_first - self.upper_slack) or (
                math.isinf(sup_first) and not math.isinf(lt)
            ):
                problems.append(
                    "{}: Lt = {!r} < sup first = {!r}".format(cond.name, lt, sup_first)
                )
            if ft > inf_first_pi + self.lower_slack:
                problems.append(
                    "{}: Ft = {!r} > inf first_Π = {!r}".format(
                        cond.name, ft, inf_first_pi
                    )
                )
        return "; ".join(problems) or "no violated inequality (?)"


def state_cap(state: TimeState, window):
    """Absolute horizon for look-ahead from ``state``."""
    return state.now + window
