"""The paper's primary contribution (Sections 3, 5 and 7).

The ``time(A, U)`` construction with predictive timing state, strong
possibilities mappings and their machine checkers, dummification, and
the canonical completeness mapping.
"""

from repro.core.boundmap_time import ExplicitBoundmapTime
from repro.core.checker import (
    CheckOutcome,
    check_chain_on_run,
    check_mapping_exhaustive,
    check_mapping_on_run,
)
from repro.core.completeness import (
    CanonicalMapping,
    ExhaustiveFirstEstimator,
    SamplingFirstEstimator,
)
from repro.core.discretize import discrete_options, grid_aligned, grid_times
from repro.core.inclusion import InclusionOutcome, check_semantic_inclusion
from repro.core.dummification import (
    DUMMY_STATE,
    NULL,
    dummify,
    dummify_condition,
    dummify_conditions,
    dummy_automaton,
    undum,
)
from repro.core.mappings import (
    InequalityMapping,
    MappingChain,
    ProjectionMapping,
    StrongPossibilitiesMapping,
)
from repro.core.projection import lift, project, validate_run
from repro.core.time_automaton import (
    PredictiveTimeAutomaton,
    time_of_boundmap,
    time_of_conditions,
)
from repro.core.time_state import DEFAULT_PREDICTION, Prediction, TimeState

__all__ = [
    "TimeState",
    "Prediction",
    "DEFAULT_PREDICTION",
    "PredictiveTimeAutomaton",
    "time_of_conditions",
    "time_of_boundmap",
    "ExplicitBoundmapTime",
    "project",
    "lift",
    "validate_run",
    "StrongPossibilitiesMapping",
    "InequalityMapping",
    "ProjectionMapping",
    "MappingChain",
    "CheckOutcome",
    "check_mapping_on_run",
    "check_chain_on_run",
    "check_mapping_exhaustive",
    "grid_times",
    "grid_aligned",
    "discrete_options",
    "InclusionOutcome",
    "check_semantic_inclusion",
    "NULL",
    "DUMMY_STATE",
    "dummy_automaton",
    "dummify",
    "undum",
    "dummify_condition",
    "dummify_conditions",
    "ExhaustiveFirstEstimator",
    "SamplingFirstEstimator",
    "CanonicalMapping",
]
