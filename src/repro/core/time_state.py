"""States of the ``time(A, U)`` automaton (paper Section 3.1).

Each state pairs a state of ``A`` with the current time ``Ct`` and, per
timing condition ``U``, the predictive components ``Ft(U)`` and
``Lt(U)`` — the first and last times at which ``U`` permits/requires its
next ``Π(U)`` event.  The default (inactive) prediction is
``Ft = 0, Lt = ∞``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Tuple

__all__ = ["Prediction", "TimeState", "DEFAULT_PREDICTION"]


@dataclass(frozen=True)
class Prediction:
    """One ``(Ft(U), Lt(U))`` pair."""

    ft: object
    lt: object

    @property
    def is_default(self) -> bool:
        """True for the inactive prediction ``(0, ∞)``."""
        return self.ft == 0 and math.isinf(self.lt)

    def __repr__(self) -> str:
        lt = "inf" if (isinstance(self.lt, float) and math.isinf(self.lt)) else repr(self.lt)
        return "(Ft={!r}, Lt={})".format(self.ft, lt)


#: The inactive prediction used when a condition imposes nothing.
DEFAULT_PREDICTION = Prediction(0, math.inf)


@dataclass(frozen=True)
class TimeState:
    """A state of ``time(A, U)``: ``(As, Ct, Ft(U_1), Lt(U_1), …)``.

    ``preds`` is ordered to match the owning automaton's condition
    tuple; use :meth:`repro.core.time_automaton.PredictiveTimeAutomaton.ft`
    and ``.lt`` for access by condition name.
    """

    astate: Hashable
    now: object
    preds: Tuple[Prediction, ...]

    def prediction(self, index: int) -> Prediction:
        """The prediction of the condition at ``index``."""
        return self.preds[index]

    def with_astate(self, astate: Hashable) -> "TimeState":
        """A copy with a different ``A``-state (used by trivial renaming
        mappings)."""
        return TimeState(astate, self.now, self.preds)

    def __repr__(self) -> str:
        return "TimeState(As={!r}, Ct={!r}, preds={})".format(
            self.astate, self.now, list(self.preds)
        )
