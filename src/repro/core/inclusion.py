"""Direct semantic inclusion checking (the conclusion of Theorem 3.4).

A strong possibilities mapping *proves* that every timed execution of
``(A, U)`` satisfies the conditions ``V``.  This module checks that
statement directly — no mapping involved — by enumerating all grid
executions of ``time(A, U)`` and testing each projection against ``V``
(Definition 3.1's semi-satisfaction, the right reading for finite
prefixes).

This is the ground truth the mapping method is sound against; the test
suite confirms the two verdicts agree on correct systems *and* on
mutants (a refuted mapping corresponds to an actual inclusion failure,
or to an unprovable-but-true bound — the checker tells which).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.timed.conditions import TimingCondition
from repro.timed.satisfaction import Violation, find_condition_violation
from repro.timed.timed_sequence import TimedSequence
from repro.core.discretize import discrete_options
from repro.core.projection import project
from repro.core.time_automaton import PredictiveTimeAutomaton

__all__ = ["InclusionOutcome", "check_semantic_inclusion"]


@dataclass(frozen=True)
class InclusionOutcome:
    """Outcome of a grid-exhaustive semantic inclusion check."""

    ok: bool
    executions_checked: int
    truncated: bool
    violation: Optional[Violation] = None
    counterexample: Optional[TimedSequence] = None

    def __bool__(self) -> bool:
        return self.ok


def check_semantic_inclusion(
    source: PredictiveTimeAutomaton,
    conditions: Sequence[TimingCondition],
    grid,
    horizon,
    max_executions: int = 200_000,
) -> InclusionOutcome:
    """Check that the projection of every grid execution of ``source``
    semi-satisfies every condition in ``conditions``.

    Explores the execution *tree* (not the state graph): satisfaction is
    a property of whole histories, so two different paths into the same
    state still need their own checks.  Violations come back with the
    offending projected sequence.

    Incremental pruning keeps this tractable: since semi-satisfaction is
    prefix-monotone for the safety clauses, each extension is only
    checked once, at the step where it appears.
    """
    checked = 0
    truncated = False
    frontier: deque = deque()
    for start in source.start_states():
        run = TimedSequence.initial(start)
        violation = _first_violation(project(run), conditions)
        if violation is not None:
            return InclusionOutcome(False, 1, False, violation, project(run))
        frontier.append(run)
        checked += 1
    while frontier:
        run = frontier.popleft()
        state = run.last_state
        for action, t in discrete_options(source, state, grid, horizon):
            for post in source.successors(state, action, t):
                extended = run.extend(action, t, post)
                checked += 1
                projected = project(extended)
                violation = _first_violation(projected, conditions)
                if violation is not None:
                    return InclusionOutcome(False, checked, truncated, violation, projected)
                if checked >= max_executions:
                    return InclusionOutcome(True, checked, True)
                frontier.append(extended)
    return InclusionOutcome(True, checked, truncated)


def _first_violation(seq: TimedSequence, conditions) -> Optional[Violation]:
    for condition in conditions:
        violation = find_condition_violation(seq, condition, semi=True)
        if violation is not None:
            return violation
    return None
