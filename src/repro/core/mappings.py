"""Strong possibilities mappings (paper Definition 3.2).

A strong possibilities mapping ``f`` relates states of
``time(A, U)`` (the *source*, typically the algorithm with its timing
assumptions) to sets of states of ``time(A, V)`` (the *target*,
typically the requirements automaton).  It must:

1. map some start state of the target into the image of every start
   state of the source;
2. allow every source step to be matched by a target step staying in
   the image; and
3. be the identity on the ``A``-state components.

Concrete mappings in the paper are systems of *inequalities* over the
predictive ``Ft``/``Lt`` components; :class:`InequalityMapping` captures
exactly that.  :class:`ProjectionMapping` covers the paper's "trivial"
mappings (dropping or renaming conditions with equal predictions).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, Optional, Sequence

from repro.errors import MappingError
from repro.obs import instrument as _telemetry
from repro.core.time_automaton import PredictiveTimeAutomaton
from repro.core.time_state import TimeState

__all__ = [
    "StrongPossibilitiesMapping",
    "InequalityMapping",
    "ProjectionMapping",
    "MappingChain",
]


class StrongPossibilitiesMapping(ABC):
    """Base class: a candidate strong possibilities mapping.

    Subclasses provide :meth:`image_contains`; the identity-on-``A``
    requirement (condition 3 of Definition 3.2) is enforced here in
    :meth:`contains` so no subclass can forget it.
    """

    def __init__(
        self,
        source: PredictiveTimeAutomaton,
        target: PredictiveTimeAutomaton,
        name: Optional[str] = None,
    ):
        self.source = source
        self.target = target
        self.name = name or "{} -> {}".format(source.name, target.name)

    @abstractmethod
    def image_contains(self, target_state: TimeState, source_state: TimeState) -> bool:
        """True when ``target_state ∈ f(source_state)``, assuming the
        ``A``-components already agree."""

    @property
    def bases_agree(self) -> bool:
        """True when source and target are built over the *same*
        underlying ``A`` object — a necessary condition for the
        identity-on-``A`` requirement (checked statically by lint rule
        R010)."""
        return self.source.base is self.target.base

    def contains(self, target_state: TimeState, source_state: TimeState) -> bool:
        """``target_state ∈ f(source_state)`` including the identity
        requirement on ``A``-state components."""
        rec = _telemetry._ACTIVE
        if rec is not None:
            rec.incr("mapping.evals")
        if target_state.astate != source_state.astate:
            return False
        return self.image_contains(target_state, source_state)

    def describe_failure(
        self, target_state: TimeState, source_state: TimeState
    ) -> str:
        """Diagnostic text for a containment failure; subclasses may
        refine this with the violated inequality."""
        if target_state.astate != source_state.astate:
            return "A-state components differ: {!r} vs {!r}".format(
                target_state.astate, source_state.astate
            )
        return "target state {!r} is outside the image of {!r}".format(
            target_state, source_state
        )

    def __repr__(self) -> str:
        return "<{} {}>".format(type(self).__name__, self.name)


class InequalityMapping(StrongPossibilitiesMapping):
    """A mapping given by a predicate over (target, source) state pairs —
    in the paper's examples, a conjunction of inequalities relating the
    target's ``Ft/Lt`` components to expressions over the source state.
    """

    def __init__(
        self,
        source: PredictiveTimeAutomaton,
        target: PredictiveTimeAutomaton,
        predicate: Callable[[TimeState, TimeState], bool],
        name: Optional[str] = None,
        explain: Optional[Callable[[TimeState, TimeState], str]] = None,
    ):
        super().__init__(source, target, name=name)
        self._predicate = predicate
        self._explain = explain

    def image_contains(self, target_state: TimeState, source_state: TimeState) -> bool:
        return bool(self._predicate(target_state, source_state))

    def describe_failure(self, target_state: TimeState, source_state: TimeState) -> str:
        if self._explain is not None and target_state.astate == source_state.astate:
            return self._explain(target_state, source_state)
        return super().describe_failure(target_state, source_state)


class ProjectionMapping(StrongPossibilitiesMapping):
    """The paper's "trivial" mappings: every target condition's
    prediction must *equal* the prediction of a designated source
    condition (by default the one with the same name); source-only
    conditions are simply forgotten.

    Used for ``B_0 → B`` (drop boundmap conditions) and
    ``time(Ã, b̃) → B_{n-1}`` (rename ``SIGNAL_n``'s class condition to
    ``U_{n-1,n}``).
    """

    def __init__(
        self,
        source: PredictiveTimeAutomaton,
        target: PredictiveTimeAutomaton,
        name_map: Optional[Dict[str, str]] = None,
        name: Optional[str] = None,
    ):
        super().__init__(source, target, name=name)
        self._name_map: Dict[str, str] = dict(name_map or {})
        for cond in target.conditions:
            source_name = self._name_map.get(cond.name, cond.name)
            # Fail fast if the projection is not well defined.
            source.index_of(source_name)
            self._name_map[cond.name] = source_name

    def image_contains(self, target_state: TimeState, source_state: TimeState) -> bool:
        for cond in self.target.conditions:
            source_name = self._name_map[cond.name]
            target_pred = target_state.preds[self.target.index_of(cond.name)]
            source_pred = source_state.preds[self.source.index_of(source_name)]
            if target_pred != source_pred:
                return False
        return True

    def describe_failure(self, target_state: TimeState, source_state: TimeState) -> str:
        if target_state.astate != source_state.astate:
            return super().describe_failure(target_state, source_state)
        diffs = []
        for cond in self.target.conditions:
            source_name = self._name_map[cond.name]
            target_pred = target_state.preds[self.target.index_of(cond.name)]
            source_pred = source_state.preds[self.source.index_of(source_name)]
            if target_pred != source_pred:
                diffs.append(
                    "{} = {!r} but source {} = {!r}".format(
                        cond.name, target_pred, source_name, source_pred
                    )
                )
        return "; ".join(diffs) or "no difference (?)"


class MappingChain:
    """A hierarchy ``time(A, U_m) → … → time(A, U_0)`` of mappings whose
    composition witnesses the overall requirement (paper Section 6.3,
    Corollary 6.3).  The chain is checked level-by-level in lockstep by
    :func:`repro.core.checker.check_chain_on_run`.
    """

    def __init__(self, mappings: Sequence[StrongPossibilitiesMapping]):
        self.mappings = tuple(mappings)
        if not self.mappings:
            raise MappingError("a mapping chain needs at least one mapping")
        for first, second in zip(self.mappings, self.mappings[1:]):
            if first.target is not second.source:
                raise MappingError(
                    "chain mismatch: {} targets {} but {} starts from {}".format(
                        first.name, first.target.name, second.name, second.source.name
                    )
                )

    @property
    def source(self) -> PredictiveTimeAutomaton:
        return self.mappings[0].source

    @property
    def target(self) -> PredictiveTimeAutomaton:
        return self.mappings[-1].target

    def __len__(self) -> int:
        return len(self.mappings)

    def __iter__(self):
        return iter(self.mappings)
