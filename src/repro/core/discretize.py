"""Rational time discretisation of ``time(A, U)``.

Continuous-time automata have uncountably many timed steps; for
*exhaustive* checking we restrict event times to multiples of a rational
``grid`` and bound the absolute ``horizon``.  When every constant of the
model is a multiple of the grid, all ``Ft``/``Lt`` components stay on
the grid, so window endpoints are themselves explorable times and the
grid semantics exercises every boundary case of the definitions.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Hashable, Iterator, List, Tuple

from repro.errors import TimingConditionError
from repro.core.time_automaton import PredictiveTimeAutomaton
from repro.core.time_state import TimeState

__all__ = ["grid_times", "discrete_options", "grid_aligned"]


def grid_aligned(value, grid) -> bool:
    """True when ``value`` is a multiple of ``grid`` (or infinite)."""
    if isinstance(value, float) and math.isinf(value):
        return True
    return Fraction(value) % Fraction(grid) == 0


def grid_times(lo, hi, grid) -> List[Fraction]:
    """All multiples of ``grid`` in ``[lo, hi]`` (empty when ``lo > hi``)."""
    grid = Fraction(grid)
    if grid <= 0:
        raise TimingConditionError("grid must be positive")
    if isinstance(hi, float) and math.isinf(hi):
        raise TimingConditionError("grid_times needs a finite upper end; cap hi first")
    lo_f = Fraction(lo)
    hi_f = Fraction(hi)
    if lo_f > hi_f:
        return []
    first_index = -((-lo_f) // grid)  # ceil(lo / grid)
    last_index = hi_f // grid  # floor(hi / grid)
    return [grid * i for i in range(int(first_index), int(last_index) + 1)]


def discrete_options(
    automaton: PredictiveTimeAutomaton,
    state: TimeState,
    grid,
    horizon,
) -> Iterator[Tuple[Hashable, Fraction]]:
    """All grid-time steps available from ``state``: pairs ``(π, t)``
    with ``t`` a multiple of ``grid``, inside the action's time window,
    and at most ``horizon``.

    Events at times beyond ``horizon`` are pruned — callers choose a
    horizon large enough that every obligation of interest resolves
    earlier.
    """
    horizon_f = Fraction(horizon)
    for action, lo, hi in automaton.schedulable_actions(state):
        if isinstance(hi, float) and math.isinf(hi):
            capped_hi = horizon_f
        else:
            capped_hi = min(Fraction(hi), horizon_f)
        for t in grid_times(lo, capped_hi, grid):
            yield (action, t)
