"""Closed subintervals of ``[0, ∞]`` used by boundmaps and timing
conditions (paper Sections 2.2–2.3).

The paper requires every bound interval ``[b_l, b_u]`` to have
``b_l ≠ ∞`` and ``b_u ≠ 0``.  Values may be ints, fractions or floats;
``math.inf`` denotes an unbounded upper end.  Interval arithmetic
(Minkowski sum, integer scaling) backs the recurrence-style baseline
analysis of EXPERIMENTS E11.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Union

from repro.errors import TimingConditionError

__all__ = ["Interval", "INFINITY", "as_exact"]

#: Alias so callers need not import :mod:`math` for unbounded intervals.
INFINITY = math.inf

Number = Union[int, float, Fraction]


def as_exact(value: Number) -> Number:
    """Convert ``value`` to exact arithmetic where possible.

    Ints and fractions pass through; finite floats become
    :class:`~fractions.Fraction`; ``inf`` stays ``inf``.
    """
    if isinstance(value, (int, Fraction)):
        return value
    if math.isinf(value):
        return INFINITY
    return Fraction(value).limit_denominator(10**12)


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[lo, hi] ⊆ [0, ∞]``.

    Satisfies the paper's boundmap requirements: ``0 ≤ lo ≤ hi``,
    ``lo ≠ ∞`` and ``hi ≠ 0``.
    """

    lo: Number
    hi: Number

    def __post_init__(self) -> None:
        if math.isinf(self.lo):
            raise TimingConditionError("interval lower bound must not be infinite")
        if self.lo < 0:
            raise TimingConditionError(
                "interval lower bound must be nonnegative, got {!r}".format(self.lo)
            )
        if self.hi == 0:
            raise TimingConditionError("interval upper bound must be nonzero")
        if self.hi < self.lo:
            raise TimingConditionError(
                "empty interval [{!r}, {!r}]".format(self.lo, self.hi)
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def exactly(cls, value: Number) -> "Interval":
        """The point interval ``[value, value]`` (value must be > 0)."""
        return cls(value, value)

    @classmethod
    def at_most(cls, hi: Number) -> "Interval":
        """``[0, hi]`` — an upper bound only."""
        return cls(0, hi)

    @classmethod
    def at_least(cls, lo: Number) -> "Interval":
        """``[lo, ∞]`` — a lower bound only."""
        return cls(lo, INFINITY)

    @classmethod
    def unbounded(cls) -> "Interval":
        """``[0, ∞]`` — the trivial interval imposing no constraint."""
        return cls(0, INFINITY)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def is_upper_bounded(self) -> bool:
        """True when ``hi < ∞`` (the condition's clause 1 applies)."""
        return not math.isinf(self.hi)

    @property
    def is_trivial(self) -> bool:
        """True for ``[0, ∞]``: no timing constraint at all."""
        return self.lo == 0 and math.isinf(self.hi)

    @property
    def width(self) -> Number:
        """``hi − lo`` (``∞`` when unbounded)."""
        if math.isinf(self.hi):
            return INFINITY
        return self.hi - self.lo

    def contains(self, value: Number) -> bool:
        """True if ``lo ≤ value ≤ hi``."""
        return self.lo <= value <= self.hi

    def __contains__(self, value: Number) -> bool:
        return self.contains(value)

    # ------------------------------------------------------------------
    # Arithmetic (for the recurrence baseline and requirement synthesis)
    # ------------------------------------------------------------------

    def __add__(self, other: "Interval") -> "Interval":
        """Minkowski sum ``[a+c, b+d]``."""
        if not isinstance(other, Interval):
            return NotImplemented
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def shift(self, offset: Number) -> "Interval":
        """``[lo + offset, hi + offset]`` (offset ≥ 0)."""
        if offset < 0:
            raise TimingConditionError("cannot shift an interval by a negative offset")
        return Interval(self.lo + offset, self.hi + offset)

    def scale(self, factor: int) -> "Interval":
        """``[k·lo, k·hi]`` for a positive integer ``k`` — the ``k``
        repetitions of an event with this per-occurrence bound."""
        if not isinstance(factor, int) or factor <= 0:
            raise TimingConditionError("scale factor must be a positive integer")
        hi = INFINITY if math.isinf(self.hi) else self.hi * factor
        return Interval(self.lo * factor, hi)

    def intersect(self, other: "Interval") -> "Interval":
        """The intersection; raises if it would be empty or violate the
        interval well-formedness rules."""
        return Interval(max(self.lo, other.lo), min(self.hi, other.hi))

    def widen(self, slack: Number) -> "Interval":
        """``[max(0, lo − slack), hi + slack]``: used by sampled
        completeness estimators to absorb Monte-Carlo error."""
        if slack < 0:
            raise TimingConditionError("slack must be nonnegative")
        lo = self.lo - slack
        if lo < 0:
            lo = 0
        hi = self.hi if math.isinf(self.hi) else self.hi + slack
        return Interval(lo, hi)

    def __repr__(self) -> str:
        return "[{}, {}]".format(_render(self.lo), _render(self.hi))


def _render(value: Number) -> str:
    if isinstance(value, float) and math.isinf(value):
        return "inf"
    if isinstance(value, Fraction) and value.denominator == 1:
        return str(value.numerator)
    if isinstance(value, Fraction):
        return "{}/{}".format(value.numerator, value.denominator)
    return repr(value)
