"""Satisfaction checkers for timing conditions and timed executions.

Implements, directly from the paper:

- Definition 2.1 — ``α`` is a timed execution of ``(A, b)``;
- Definition 2.2 — ``α`` satisfies a timing condition;
- Definition 3.1 — ``α`` *semi-satisfies* a timing condition (the
  safety-only reading for finite prefixes, where an upper bound is
  excused if insufficient time has passed).

All checkers return a :class:`Violation` (or None) so tests and
diagnostics can point at the exact failing clause.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.ioa.execution import validate_execution
from repro.ioa.partition import PartitionClass
from repro.timed.boundmap import TimedAutomaton
from repro.timed.conditions import TimingCondition, boundmap_conditions
from repro.timed.timed_sequence import TimedSequence

__all__ = [
    "Violation",
    "find_condition_violation",
    "satisfies",
    "semi_satisfies",
    "find_boundmap_violation",
    "is_timed_execution",
    "is_timed_semi_execution",
    "satisfies_all",
    "semi_satisfies_all",
]


@dataclass(frozen=True)
class Violation:
    """A concrete refutation of one clause of a satisfaction definition."""

    condition: str
    clause: str  # "upper" or "lower"
    origin_index: int  # i (0 for T_start origins)
    detail: str

    def __str__(self) -> str:
        return "[{}] {} bound violated from index {}: {}".format(
            self.condition, self.clause, self.origin_index, self.detail
        )


def _check_upper_from(
    seq: TimedSequence,
    condition: TimingCondition,
    origin_index: int,
    origin_time,
    semi: bool,
) -> Optional[Violation]:
    """Clause 1 of Definitions 2.2/3.1 for one origin.

    Scan for the first ``j > origin_index`` with ``π_j ∈ Π`` or
    ``s_j ∈ S``; it must come no later than ``origin_time + b_u``.
    """
    deadline = origin_time + condition.upper
    for j in range(origin_index + 1, len(seq) + 1):
        action_j = seq.action(j)
        state_j = seq.state(j)
        if condition.in_pi(action_j) or condition.disables(state_j):
            if seq.time(j) <= deadline:
                return None
            return Violation(
                condition.name,
                "upper",
                origin_index,
                "first Π/S occurrence at index {} has time {!r} > deadline "
                "{!r}".format(j, seq.time(j), deadline),
            )
    if semi and seq.t_end <= deadline:
        return None
    return Violation(
        condition.name,
        "upper",
        origin_index,
        "no Π action or S state by the deadline {!r} (t_end = {!r})".format(
            deadline, seq.t_end
        ),
    )


def _check_lower_from(
    seq: TimedSequence,
    condition: TimingCondition,
    origin_index: int,
    origin_time,
) -> Optional[Violation]:
    """Clause 2 of Definition 2.2 (identical in Definition 3.1) for one
    origin: any ``Π`` action strictly before ``origin_time + b_l`` must
    be preceded by a disabling state strictly inside the window.
    """
    if condition.lower == 0:
        return None
    threshold = origin_time + condition.lower
    disabling_seen = False
    for j in range(origin_index + 1, len(seq) + 1):
        t_j = seq.time(j)
        if t_j >= threshold:
            return None  # times are nondecreasing; no later violation possible
        if condition.in_pi(seq.action(j)) and not disabling_seen:
            return Violation(
                condition.name,
                "lower",
                origin_index,
                "Π action {!r} at index {} occurs at time {!r} < {!r} with no "
                "intervening disabling state".format(seq.action(j), j, t_j, threshold),
            )
        if condition.disables(seq.state(j)):
            disabling_seen = True
    return None


def find_condition_violation(
    seq: TimedSequence, condition: TimingCondition, semi: bool = False
) -> Optional[Violation]:
    """First violation of Definition 2.2 (or 3.1 when ``semi``), or None."""
    # T_start origin (the definitions evaluate T_start only at s0).
    if condition.starts(seq.state(0)):
        condition.check_start_state(seq.state(0))
        if condition.interval.is_upper_bounded:
            violation = _check_upper_from(seq, condition, 0, 0, semi)
            if violation is not None:
                return violation
        violation = _check_lower_from(seq, condition, 0, 0)
        if violation is not None:
            return violation
    # T_step origins.
    for i, (pre, event, post) in enumerate(seq.triples(), start=1):
        if not condition.triggers(pre, event.action, post):
            continue
        condition.check_trigger_step(pre, event.action, post)
        if condition.interval.is_upper_bounded:
            violation = _check_upper_from(seq, condition, i, event.time, semi)
            if violation is not None:
                return violation
        violation = _check_lower_from(seq, condition, i, event.time)
        if violation is not None:
            return violation
    return None


def satisfies(seq: TimedSequence, condition: TimingCondition) -> bool:
    """Definition 2.2: ``seq`` satisfies ``condition``."""
    return find_condition_violation(seq, condition, semi=False) is None


def semi_satisfies(seq: TimedSequence, condition: TimingCondition) -> bool:
    """Definition 3.1: ``seq`` semi-satisfies ``condition``."""
    return find_condition_violation(seq, condition, semi=True) is None


def satisfies_all(
    seq: TimedSequence, conditions: Iterable[TimingCondition]
) -> Optional[Violation]:
    """First violation across a set of conditions (Definition 2.2), or
    None when ``seq`` is a timed execution of ``(A, U)`` as far as the
    conditions are concerned."""
    for condition in conditions:
        violation = find_condition_violation(seq, condition, semi=False)
        if violation is not None:
            return violation
    return None


def semi_satisfies_all(
    seq: TimedSequence, conditions: Iterable[TimingCondition]
) -> Optional[Violation]:
    """First semi-satisfaction violation across a set of conditions."""
    for condition in conditions:
        violation = find_condition_violation(seq, condition, semi=True)
        if violation is not None:
            return violation
    return None


# ----------------------------------------------------------------------
# Definition 2.1, checked directly against the boundmap (not via cond(C))
# ----------------------------------------------------------------------


def _class_origins(
    seq: TimedSequence, automaton, cls: PartitionClass
) -> Iterable[Tuple[int, object]]:
    """The origins of Definition 2.1 for class ``C``: indices ``i`` with
    ``s_i ∈ enabled(A, C)`` and (``i = 0`` or ``s_{i-1} ∈ disabled`` or
    ``π_i ∈ C``), paired with ``t_i``."""
    enabled_at: List[bool] = [
        automaton.class_enabled(state, cls) for state in seq.states
    ]
    if enabled_at[0]:
        yield (0, 0)
    for i in range(1, len(seq) + 1):
        if not enabled_at[i]:
            continue
        if not enabled_at[i - 1] or seq.action(i) in cls.actions:
            yield (i, seq.time(i))


def find_boundmap_violation(
    timed: TimedAutomaton, seq: TimedSequence, semi: bool = False
) -> Optional[Violation]:
    """Definition 2.1, implemented literally (per class and origin).

    With ``semi=True``, upper-bound obligations whose deadline lies
    beyond ``t_end`` are excused, mirroring Definition 3.1; this is the
    right check for finite prefixes of ongoing executions.
    """
    automaton = timed.automaton
    for cls in timed.classes():
        interval = timed.class_interval(cls)
        enabled_at = [automaton.class_enabled(state, cls) for state in seq.states]
        for origin, origin_time in _class_origins(seq, automaton, cls):
            # Condition 1: within b_u, some C action occurs or C is disabled.
            if interval.is_upper_bounded:
                deadline = origin_time + interval.hi
                witness = None
                for j in range(origin + 1, len(seq) + 1):
                    if seq.action(j) in cls.actions or not enabled_at[j]:
                        witness = j
                        break
                if witness is not None:
                    if seq.time(witness) > deadline:
                        return Violation(
                            cls.name,
                            "upper",
                            origin,
                            "first C action / disabling at index {} is at time "
                            "{!r} > deadline {!r}".format(
                                witness, seq.time(witness), deadline
                            ),
                        )
                elif not (semi and seq.t_end <= deadline):
                    return Violation(
                        cls.name,
                        "upper",
                        origin,
                        "no C action or disabled state by deadline {!r} "
                        "(t_end = {!r})".format(deadline, seq.t_end),
                    )
            # Condition 2: no C action strictly before b_l has elapsed.
            if interval.lo > 0:
                threshold = origin_time + interval.lo
                for j in range(origin + 1, len(seq) + 1):
                    if seq.time(j) >= threshold:
                        break
                    if seq.action(j) in cls.actions:
                        return Violation(
                            cls.name,
                            "lower",
                            origin,
                            "C action {!r} at index {} occurs at time {!r} < "
                            "{!r}".format(seq.action(j), j, seq.time(j), threshold),
                        )
    return None


def is_timed_execution(
    timed: TimedAutomaton, seq: TimedSequence, check_untimed: bool = True
) -> bool:
    """True when ``seq`` is a (finite) timed execution of ``(A, b)``
    per Definition 2.1, including ``ord(seq)`` being an execution of
    ``A`` unless ``check_untimed`` is disabled."""
    if check_untimed:
        validate_execution(timed.automaton, seq.ord())
    return find_boundmap_violation(timed, seq, semi=False) is None


def is_timed_semi_execution(
    timed: TimedAutomaton, seq: TimedSequence, check_untimed: bool = True
) -> bool:
    """True when ``seq`` is a timed semi-execution of ``(A, U_b)`` —
    the Definition 3.1 reading of the boundmap conditions."""
    if check_untimed:
        validate_execution(timed.automaton, seq.ord())
    return find_boundmap_violation(timed, seq, semi=True) is None
