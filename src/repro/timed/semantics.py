"""Lemma 2.1 / Corollary 2.2 utilities.

The paper proves that a timed sequence is a timed execution of
``(A, b)`` (Definition 2.1) exactly when it satisfies every ``cond(C)``
in ``U_b`` (Definition 2.2).  This module provides both readings side by
side and an agreement checker used by tests and by experiment E6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.ioa.execution import validate_execution
from repro.timed.boundmap import TimedAutomaton
from repro.timed.conditions import boundmap_conditions
from repro.timed.satisfaction import (
    Violation,
    find_boundmap_violation,
    satisfies_all,
    semi_satisfies_all,
)
from repro.timed.timed_sequence import TimedSequence

__all__ = ["EquivalenceReport", "check_lemma_2_1", "timed_execution_violation"]


@dataclass(frozen=True)
class EquivalenceReport:
    """The two verdicts of Lemma 2.1 on one timed sequence."""

    definition_2_1: Optional[Violation]  # direct boundmap reading
    definition_2_2: Optional[Violation]  # via cond(C) conditions

    @property
    def agree(self) -> bool:
        """Lemma 2.1: both checkers accept or both reject."""
        return (self.definition_2_1 is None) == (self.definition_2_2 is None)

    @property
    def accepted(self) -> bool:
        return self.definition_2_1 is None and self.definition_2_2 is None


def check_lemma_2_1(
    timed: TimedAutomaton, seq: TimedSequence, semi: bool = False
) -> EquivalenceReport:
    """Run both readings of the boundmap semantics on ``seq``.

    ``semi`` selects the Definition 3.1 variants on both sides, which is
    the appropriate comparison for finite prefixes.
    """
    validate_execution(timed.automaton, seq.ord())
    direct = find_boundmap_violation(timed, seq, semi=semi)
    conditions = boundmap_conditions(timed)
    if semi:
        via_conditions = semi_satisfies_all(seq, conditions)
    else:
        via_conditions = satisfies_all(seq, conditions)
    return EquivalenceReport(direct, via_conditions)


def timed_execution_violation(
    timed: TimedAutomaton, seq: TimedSequence
) -> Optional[Violation]:
    """Corollary 2.2 entry point: the first reason ``seq`` fails to be a
    timed execution of ``(A, b)`` ≡ ``(A, U_b)``, or None."""
    report = check_lemma_2_1(timed, seq)
    if not report.agree:
        raise AssertionError(
            "Lemma 2.1 equivalence broken: direct={!r} via-conditions={!r}".format(
                report.definition_2_1, report.definition_2_2
            )
        )
    return report.definition_2_1
