"""Timed sequences (paper Section 2.2).

A timed sequence alternates states and ``(action, time)`` pairs with
nondecreasing times, ``t_0 = 0`` implicit.  The library represents only
finite timed sequences explicitly; infinite timed executions appear as
ever-growing prefixes produced by the simulator (Lemma 3.1 justifies
reasoning about the limit of such prefix chains).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterator, List, Sequence, Tuple, Union

from repro.errors import TimedSequenceError
from repro.ioa.execution import Execution

__all__ = ["TimedEvent", "TimedSequence", "timed_word"]


@dataclass(frozen=True)
class TimedEvent:
    """One ``(action, time)`` pair."""

    action: Hashable
    time: object  # any real-number type

    def __repr__(self) -> str:
        return "({!r}, {!r})".format(self.action, self.time)


class TimedSequence:
    """A finite timed sequence ``s0, (π1, t1), s1, …, s_end``."""

    def __init__(
        self,
        states: Sequence[Hashable],
        events: Sequence[Union[TimedEvent, Tuple[Hashable, object]]],
    ):
        self._states: Tuple[Hashable, ...] = tuple(states)
        normalised: List[TimedEvent] = []
        for ev in events:
            if not isinstance(ev, TimedEvent):
                action, time = ev
                ev = TimedEvent(action, time)
            normalised.append(ev)
        self._events: Tuple[TimedEvent, ...] = tuple(normalised)
        if len(self._states) != len(self._events) + 1:
            raise TimedSequenceError(
                "a timed sequence with {} events needs {} states, got {}".format(
                    len(self._events), len(self._events) + 1, len(self._states)
                )
            )
        previous = 0  # t_0 = 0 by definition
        for index, ev in enumerate(self._events):
            if ev.time < previous:
                raise TimedSequenceError(
                    "event times must be nondecreasing: t_{} = {!r} < t_{} = "
                    "{!r}".format(index + 1, ev.time, index, previous)
                )
            previous = ev.time

    @classmethod
    def initial(cls, state: Hashable) -> "TimedSequence":
        """The event-free timed sequence sitting in ``state``."""
        return cls((state,), ())

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def states(self) -> Tuple[Hashable, ...]:
        return self._states

    @property
    def events(self) -> Tuple[TimedEvent, ...]:
        return self._events

    @property
    def first_state(self) -> Hashable:
        return self._states[0]

    @property
    def last_state(self) -> Hashable:
        return self._states[-1]

    def __len__(self) -> int:
        """Number of events."""
        return len(self._events)

    @property
    def t_end(self) -> object:
        """The paper's ``t_end``: time of the last event, or 0."""
        if not self._events:
            return 0
        return self._events[-1].time

    def state(self, i: int) -> Hashable:
        """``s_i``."""
        return self._states[i]

    def action(self, i: int) -> Hashable:
        """``π_i`` for ``i ≥ 1`` (paper indexing)."""
        return self._events[i - 1].action

    def time(self, i: int) -> object:
        """``t_i`` for ``i ≥ 0`` (``t_0 = 0``)."""
        if i == 0:
            return 0
        return self._events[i - 1].time

    def triples(self) -> Iterator[Tuple[Hashable, TimedEvent, Hashable]]:
        """Iterate over ``(s_{i-1}, (π_i, t_i), s_i)`` timed steps."""
        for i, ev in enumerate(self._events):
            yield (self._states[i], ev, self._states[i + 1])

    # ------------------------------------------------------------------
    # Derived sequences
    # ------------------------------------------------------------------

    def ord(self) -> Execution:
        """The paper's ``ord(α)``: the time components removed."""
        return Execution(self._states, tuple(ev.action for ev in self._events))

    def timed_schedule(self) -> Tuple[TimedEvent, ...]:
        """The (action, time) pairs — the timed schedule."""
        return self._events

    def timed_behavior(self, external) -> Tuple[TimedEvent, ...]:
        """The pairs whose action satisfies the ``external`` predicate
        (or membership in an action set)."""
        if callable(external):
            keep = external
        else:
            members = frozenset(external)

            def keep(action: Hashable) -> bool:
                return action in members

        return tuple(ev for ev in self._events if keep(ev.action))

    # ------------------------------------------------------------------
    # Editing
    # ------------------------------------------------------------------

    def extend(self, action: Hashable, time: object, state: Hashable) -> "TimedSequence":
        """A new timed sequence with one more event appended."""
        return TimedSequence(
            self._states + (state,), self._events + (TimedEvent(action, time),)
        )

    def prefix(self, events: int) -> "TimedSequence":
        """The prefix with the given number of events."""
        if events < 0 or events > len(self._events):
            raise TimedSequenceError("prefix length {} out of range".format(events))
        return TimedSequence(self._states[: events + 1], self._events[:events])

    def is_prefix_of(self, other: "TimedSequence") -> bool:
        """True when ``self`` is a prefix of ``other`` (Lemma 3.1 chains)."""
        if len(self) > len(other):
            return False
        return (
            self._states == other._states[: len(self._states)]
            and self._events == other._events[: len(self._events)]
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TimedSequence)
            and self._states == other._states
            and self._events == other._events
        )

    def __hash__(self) -> int:
        return hash((self._states, self._events))

    def __repr__(self) -> str:
        if len(self._events) <= 4:
            body = ", ".join(repr(ev) for ev in self._events)
        else:
            body = "{!r}, …, {!r} ({} events)".format(
                self._events[0], self._events[-1], len(self._events)
            )
        return "TimedSequence({})".format(body)


def timed_word(seq: TimedSequence) -> Tuple[Tuple[Hashable, object], ...]:
    """The sequence of ``(action, time)`` tuples, for easy assertions."""
    return tuple((ev.action, ev.time) for ev in seq.events)
