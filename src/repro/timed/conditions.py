"""Timing conditions (paper Section 2.3).

A timing condition ``(T_start, T_step) --b--> (Π, S)`` bounds the time
from a trigger (a designated start state, or a designated step) to the
next occurrence of an action in ``Π``, with the measurement suspended
whenever a state in the disabling set ``S`` is reached.

Because the automata in this library may have large or structured state
spaces, conditions are represented by *predicates* (``starts``,
``triggers``, ``in_pi``, ``disables``) rather than materialised sets.
The paper's two technical requirements — triggers never designate a
disabled state — cannot be checked once and for all against a
predicate, so they are asserted at every point of use
(:meth:`TimingCondition.check_start_state`,
:meth:`TimingCondition.check_trigger_step`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, List, Optional, Tuple, Union

from repro.errors import TimingConditionError
from repro.ioa.automaton import IOAutomaton
from repro.ioa.partition import PartitionClass
from repro.timed.boundmap import TimedAutomaton
from repro.timed.interval import Interval

__all__ = ["TimingCondition", "cond_of_class", "boundmap_conditions"]


def _never_state(_state: Hashable) -> bool:
    return False


def _never_step(_pre: Hashable, _action: Hashable, _post: Hashable) -> bool:
    return False


@dataclass(frozen=True)
class TimingCondition:
    """One timing condition ``(T_start, T_step) --b--> (Π, S)``.

    Attributes
    ----------
    name:
        Unique identifier; keys the ``Ft``/``Lt`` components in
        ``time(A, U)`` states.
    interval:
        The bound ``b = [b_l, b_u]``.
    starts:
        Membership predicate of ``T_start ⊆ start(A)`` (evaluated only
        on start states).
    triggers:
        Membership predicate of ``T_step ⊆ steps(A)``.
    in_pi:
        Membership predicate of the action set ``Π``.
    disables:
        Membership predicate of the disabling set ``S``.
    """

    name: str
    interval: Interval
    starts: Callable[[Hashable], bool] = _never_state
    triggers: Callable[[Hashable, Hashable, Hashable], bool] = _never_step
    in_pi: Callable[[Hashable], bool] = _never_state
    disables: Callable[[Hashable], bool] = _never_state

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        name: str,
        interval: Interval,
        actions: Union[Iterable[Hashable], Callable[[Hashable], bool]],
        start_states: Union[None, Iterable[Hashable], Callable[[Hashable], bool]] = None,
        step_predicate: Optional[Callable[[Hashable, Hashable, Hashable], bool]] = None,
        disabling: Union[None, Iterable[Hashable], Callable[[Hashable], bool]] = None,
    ) -> "TimingCondition":
        """Build a condition from sets or predicates, whichever is handy."""
        return cls(
            name=name,
            interval=interval,
            starts=_as_state_predicate(start_states),
            triggers=step_predicate or _never_step,
            in_pi=_as_action_predicate(actions),
            disables=_as_state_predicate(disabling),
        )

    @classmethod
    def after_action(
        cls,
        name: str,
        interval: Interval,
        trigger_action: Hashable,
        target_actions: Union[Iterable[Hashable], Callable[[Hashable], bool]],
    ) -> "TimingCondition":
        """The common "event-to-event" shape: measured from every step
        whose action is ``trigger_action`` to the next target action —
        e.g. the paper's ``G2`` (GRANT-to-GRANT) and ``U_{k,n}``
        (SIGNAL_k-to-SIGNAL_n)."""

        def triggers(_pre: Hashable, action: Hashable, _post: Hashable) -> bool:
            return action == trigger_action

        return cls(
            name=name,
            interval=interval,
            triggers=triggers,
            in_pi=_as_action_predicate(target_actions),
        )

    @classmethod
    def from_start(
        cls,
        name: str,
        interval: Interval,
        target_actions: Union[Iterable[Hashable], Callable[[Hashable], bool]],
        start_states: Union[None, Iterable[Hashable], Callable[[Hashable], bool]] = None,
    ) -> "TimingCondition":
        """Measured from (all, or the given) start states to the first
        target action — e.g. the paper's ``G1``."""
        starts = _as_state_predicate(start_states) if start_states is not None else (
            lambda _s: True
        )
        return cls(
            name=name,
            interval=interval,
            starts=starts,
            in_pi=_as_action_predicate(target_actions),
        )

    # ------------------------------------------------------------------
    # Bound accessors (paper notation)
    # ------------------------------------------------------------------

    @property
    def lower(self):
        """``b_l``."""
        return self.interval.lo

    @property
    def upper(self):
        """``b_u``."""
        return self.interval.hi

    # ------------------------------------------------------------------
    # Technical requirements (checked at point of use)
    # ------------------------------------------------------------------

    def check_start_state(self, state: Hashable) -> None:
        """Requirement 1: ``T_start ∩ S = ∅`` — assert for this state."""
        if self.starts(state) and self.disables(state):
            raise TimingConditionError(
                "condition {!r}: start state {!r} is both triggering and "
                "disabling".format(self.name, state)
            )

    def check_trigger_step(self, pre: Hashable, action: Hashable, post: Hashable) -> None:
        """Requirement 2: ``(s', π, s) ∈ T_step ⇒ s ∉ S`` — assert for
        this step."""
        if self.triggers(pre, action, post) and self.disables(post):
            raise TimingConditionError(
                "condition {!r}: trigger step ({!r}, {!r}, {!r}) ends in a "
                "disabling state".format(self.name, pre, action, post)
            )

    def __repr__(self) -> str:
        return "TimingCondition({!r}, {!r})".format(self.name, self.interval)


def _as_state_predicate(
    spec: Union[None, Iterable[Hashable], Callable[[Hashable], bool]]
) -> Callable[[Hashable], bool]:
    if spec is None:
        return _never_state
    if callable(spec):
        return spec
    members = frozenset(spec)
    return lambda state: state in members


def _as_action_predicate(
    spec: Union[Iterable[Hashable], Callable[[Hashable], bool]]
) -> Callable[[Hashable], bool]:
    if callable(spec):
        return spec
    members = frozenset(spec)
    return lambda action: action in members


def cond_of_class(timed: TimedAutomaton, cls: PartitionClass) -> TimingCondition:
    """The paper's ``cond(C)`` (Section 2.3): the timing condition a
    boundmap imposes on partition class ``C``.

    - ``T_start(C) = start(A) ∩ enabled(A, C)``
    - ``T_step(C)``: steps ``(s', π, s)`` with ``s ∈ enabled(A, C)`` and
      (``s' ∈ disabled(A, C)`` or ``π ∈ C``)
    - ``Π(C) = C`` and ``S(C) = disabled(A, C)``
    """
    automaton = timed.automaton
    start_set = frozenset(automaton.start_states())

    def starts(state: Hashable) -> bool:
        return state in start_set and automaton.class_enabled(state, cls)

    def triggers(pre: Hashable, action: Hashable, post: Hashable) -> bool:
        if not automaton.class_enabled(post, cls):
            return False
        return action in cls.actions or not automaton.class_enabled(pre, cls)

    def disables(state: Hashable) -> bool:
        return not automaton.class_enabled(state, cls)

    return TimingCondition(
        name=cls.name,
        interval=timed.class_interval(cls),
        starts=starts,
        triggers=triggers,
        in_pi=lambda action: action in cls.actions,
        disables=disables,
    )


def boundmap_conditions(timed: TimedAutomaton) -> Tuple[TimingCondition, ...]:
    """The paper's ``U_b``: one ``cond(C)`` per partition class."""
    return tuple(cond_of_class(timed, cls) for cls in timed.classes())
