"""Boundmaps and timed automata (paper Section 2.2).

A boundmap assigns to each partition class ``C`` of an I/O automaton a
closed interval ``[b_l(C), b_u(C)]``: the range of possible lengths of
time between successive chances for ``C`` to perform an action.  A
*timed automaton* is the pair ``(A, b)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Mapping, Optional, Tuple

from repro.errors import TimingConditionError
from repro.ioa.automaton import IOAutomaton
from repro.ioa.partition import PartitionClass
from repro.timed.interval import Interval, Number

__all__ = ["Boundmap", "TimedAutomaton"]


class Boundmap:
    """A mapping from partition class names to bound :class:`Interval`\\ s."""

    def __init__(self, bounds: Mapping[str, Interval]):
        self._bounds: Dict[str, Interval] = dict(bounds)

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[str, Interval]]) -> "Boundmap":
        return cls(dict(pairs))

    def __getitem__(self, class_name: str) -> Interval:
        try:
            return self._bounds[class_name]
        except KeyError:
            raise TimingConditionError(
                "boundmap has no entry for partition class {!r}".format(class_name)
            ) from None

    def __contains__(self, class_name: str) -> bool:
        return class_name in self._bounds

    def lower(self, class_name: str) -> Number:
        """``b_l(C)`` — an int, :class:`~fractions.Fraction` or float."""
        return self[class_name].lo

    def upper(self, class_name: str) -> Number:
        """``b_u(C)`` — an int, :class:`~fractions.Fraction` or float
        (``math.inf`` for unbounded classes)."""
        return self[class_name].hi

    def names(self) -> Tuple[str, ...]:
        return tuple(self._bounds)

    def items(self):
        return self._bounds.items()

    def extended(self, class_name: str, interval: Interval) -> "Boundmap":
        """A copy with one additional class bound (used by dummification)."""
        if class_name in self._bounds:
            raise TimingConditionError(
                "boundmap already has an entry for {!r}".format(class_name)
            )
        merged = dict(self._bounds)
        merged[class_name] = interval
        return Boundmap(merged)

    def validate_against(self, automaton: IOAutomaton) -> None:
        """Every partition class must have a bound, and every bound must
        name a partition class (Definition 2.1) — the same check as lint
        rules R001/R002, raised eagerly at construction time."""
        # Imported lazily: repro.lint depends on this module.
        from repro.lint.rules import coverage_diagnostics

        diagnostics = coverage_diagnostics(
            automaton.partition.names, self._bounds, location=automaton.name
        )
        if diagnostics:
            raise TimingConditionError(
                "boundmap does not cover the partition of {}:\n{}".format(
                    automaton.name,
                    "\n".join(d.render() for d in diagnostics),
                )
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Boundmap):
            return NotImplemented
        return self._bounds == other._bounds

    def __hash__(self) -> int:
        # Boundmaps are immutable in practice (every operation copies),
        # and TimedAutomaton, a frozen dataclass, hashes its fields.
        return hash(frozenset(self._bounds.items()))

    def __repr__(self) -> str:
        entries = ", ".join(
            "{!r}: {!r}".format(name, iv) for name, iv in sorted(self._bounds.items())
        )
        return "Boundmap({{{}}})".format(entries)


@dataclass(frozen=True)
class TimedAutomaton:
    """The pair ``(A, b)`` of an I/O automaton and a boundmap."""

    automaton: IOAutomaton
    boundmap: Boundmap

    def __post_init__(self) -> None:
        self.boundmap.validate_against(self.automaton)

    @property
    def name(self) -> str:
        return self.automaton.name

    def class_interval(self, cls: PartitionClass) -> Interval:
        """The bound interval of a partition class object."""
        return self.boundmap[cls.name]

    def classes(self) -> Tuple[PartitionClass, ...]:
        return self.automaton.partition.classes

    def __repr__(self) -> str:
        return "TimedAutomaton({!r}, {!r})".format(self.automaton.name, self.boundmap)
