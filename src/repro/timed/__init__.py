"""Timed automaton substrate (paper Sections 2.2–2.3).

Intervals, boundmaps, timed automata, timed sequences, timing
conditions, and the satisfaction checkers for Definitions 2.1, 2.2
and 3.1.
"""

from repro.timed.boundmap import Boundmap, TimedAutomaton
from repro.timed.conditions import TimingCondition, boundmap_conditions, cond_of_class
from repro.timed.interval import INFINITY, Interval, as_exact
from repro.timed.satisfaction import (
    Violation,
    find_boundmap_violation,
    find_condition_violation,
    is_timed_execution,
    is_timed_semi_execution,
    satisfies,
    satisfies_all,
    semi_satisfies,
    semi_satisfies_all,
)
from repro.timed.semantics import (
    EquivalenceReport,
    check_lemma_2_1,
    timed_execution_violation,
)
from repro.timed.timed_sequence import TimedEvent, TimedSequence, timed_word

__all__ = [
    "Interval",
    "INFINITY",
    "as_exact",
    "Boundmap",
    "TimedAutomaton",
    "TimedEvent",
    "TimedSequence",
    "timed_word",
    "TimingCondition",
    "cond_of_class",
    "boundmap_conditions",
    "Violation",
    "satisfies",
    "semi_satisfies",
    "satisfies_all",
    "semi_satisfies_all",
    "find_condition_violation",
    "find_boundmap_violation",
    "is_timed_execution",
    "is_timed_semi_execution",
    "EquivalenceReport",
    "check_lemma_2_1",
    "timed_execution_violation",
]
