#!/usr/bin/env python3
"""Chaos test for distributed campaigns (`repro run --dist`).

Asserts the fault-tolerance guarantees docs/distribution.md promises,
end to end over real sockets against real worker processes:

A. **kill -9 loses nothing** — a two-worker loopback campaign has one
   worker SIGKILLed mid-flight; the coordinator reclaims its leases and
   the campaign still settles every job, with verdicts identical to a
   single-host run of the same job list.
B. **torn frames are detected and survived** — a worker that severs its
   socket mid-result-frame (deterministic injection) costs exactly one
   reassignment; the ledger shows one ``done`` entry per job, the
   infrastructure attempt is on the record with the worker's identity,
   and no job is ever double-recorded.
C. **no fleet, no loss** — with every worker address dead the campaign
   degrades to the local pool and completes with the same verdicts.

Run from the repo root (CI's dist-smoke job does):

    python scripts/dist_chaos.py

Exits 0 when every scenario holds, 1 with a FAIL line otherwise.
Stdlib only, like everything else in this repo.
"""

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")

# A job list with enough meat that a mid-campaign SIGKILL lands while
# work is genuinely in flight.
CAMPAIGN = ["rm", "relay", "--kinds", "lint,analyze,check",
            "--seeds", "2", "--steps", "60"]

FAILURES = []


def check(ok, label):
    line = "{}: {}".format("ok" if ok else "FAIL", label)
    print(line)
    if not ok:
        FAILURES.append(label)
    return ok


def repro(args, workdir, timeout=300):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    env["REPRO_CACHE"] = "0"  # honest executions, no verdict pool
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=workdir, env=env, capture_output=True, text=True, timeout=timeout,
    )
    return proc


class Worker:
    """One `repro dist worker` process on an ephemeral loopback port."""

    def __init__(self, workdir, *extra_args):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC
        env["REPRO_CACHE"] = "0"
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "dist", "worker",
             "--port", "0", *extra_args],
            cwd=workdir, env=env,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        line = self.proc.stdout.readline()
        if "dist worker ready on" not in line:
            rest = self.proc.stdout.read()
            raise RuntimeError("worker failed to start: {}{}".format(line, rest))
        self.port = int(line.split("ready on ", 1)[1].split(" ")[0].rsplit(":", 1)[1])
        self.address = "127.0.0.1:{}".format(self.port)

    def sigkill(self):
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait()

    def stop(self):
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait()


def verdicts(report_json):
    """The host-independent projection of a campaign report: job id,
    status, ok, detail — what "byte-identical verdicts" means across
    machines (walls and worker identities legitimately differ)."""
    report = json.loads(report_json)
    return sorted(
        (j["job_id"], j["status"], j["ok"], j["detail"]) for j in report["jobs"]
    )


def ledger_entries(path):
    sys.path.insert(0, SRC)
    from repro.serialize import ledger_entries_from_jsonl

    with open(path) as fh:
        return ledger_entries_from_jsonl(fh.read())


def baseline(root):
    """The single-host truth every distributed run is compared to."""
    workdir = os.path.join(root, "baseline")
    os.makedirs(workdir)
    proc = repro(["run", *CAMPAIGN, "--workers", "0", "--json"], workdir)
    assert proc.returncode == 0, "baseline campaign failed: " + proc.stderr
    return verdicts(proc.stdout)


def scenario_kill_nine(root, base):
    """A: SIGKILL one of two workers mid-campaign; zero lost jobs."""
    print("--- scenario A: kill -9 one worker mid-campaign")
    workdir = os.path.join(root, "a")
    os.makedirs(workdir)
    victim, survivor = Worker(workdir, "--inline"), Worker(workdir, "--inline")
    try:
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC
        env["REPRO_CACHE"] = "0"
        campaign = subprocess.Popen(
            [sys.executable, "-m", "repro", "run", *CAMPAIGN,
             "--dist", victim.address + "," + survivor.address,
             "--ledger", "dist.jsonl", "--json"],
            cwd=workdir, env=env,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        # Wait until the victim has a session (the campaign dialed in),
        # then a beat longer so leases are granted — and murder it.
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if os.path.exists(os.path.join(workdir, "dist.jsonl")):
                break
            if campaign.poll() is not None:
                break
            time.sleep(0.05)
        time.sleep(0.5)
        victim.sigkill()
        stdout, stderr = campaign.communicate(timeout=300)
        check(campaign.returncode == 0,
              "campaign exited 0 (got {}): {}".format(
                  campaign.returncode, stderr.strip()[-200:]))
        report = json.loads(stdout)
        planned = len(base)
        check(not report["interrupted"], "campaign not interrupted")
        check(len(report["jobs"]) == planned,
              "all {} jobs settled after kill -9".format(planned))
        check(verdicts(stdout) == base,
              "verdicts identical to the single-host run")
        entries = ledger_entries(os.path.join(workdir, "dist.jsonl"))
        done = [e["job_id"] for e in entries if e["kind"] == "done"]
        check(len(done) == len(set(done)) == planned,
              "exactly one done entry per job (no loss, no double-record)")
    finally:
        victim.stop()
        survivor.stop()


def scenario_severed_frame(root, base):
    """B: a deterministic mid-frame sever costs one reassignment."""
    print("--- scenario B: socket severed mid-result-frame")
    workdir = os.path.join(root, "b")
    os.makedirs(workdir)
    # The chaotic worker tears the connection partway through shipping
    # its first result; the clean worker keeps the campaign honest.
    chaotic = Worker(workdir, "--inline", "--chaos", "sever@result:1")
    clean = Worker(workdir, "--inline")
    try:
        proc = repro(
            ["run", *CAMPAIGN, "--dist", chaotic.address + "," + clean.address,
             "--ledger", "dist.jsonl", "--json"],
            workdir,
        )
        check(proc.returncode == 0,
              "campaign exited 0 (got {}): {}".format(
                  proc.returncode, proc.stderr.strip()[-200:]))
        check(verdicts(proc.stdout) == base,
              "verdicts identical to the single-host run")
        entries = ledger_entries(os.path.join(workdir, "dist.jsonl"))
        done = [e["job_id"] for e in entries if e["kind"] == "done"]
        check(len(done) == len(set(done)) == len(base),
              "one done entry per job despite the torn frame")
        infra = [e for e in entries
                 if e["kind"] == "attempt" and e.get("worker")
                 and e["classification"] == "crash"]
        check(len(infra) == 1,
              "exactly one reclaimed attempt, stamped with worker identity "
              "(got {})".format(len(infra)))
        check(all("epoch" in e for e in infra),
              "reclaimed attempt carries its lease epoch")
    finally:
        chaotic.stop()
        clean.stop()


def scenario_degraded(root, base):
    """C: every worker address dead → local fallback, same verdicts."""
    print("--- scenario C: dead fleet degrades to the local pool")
    workdir = os.path.join(root, "c")
    os.makedirs(workdir)
    # Bind-and-release two ports so nothing is listening on them.
    import socket as socket_mod

    dead = []
    for _ in range(2):
        probe = socket_mod.socket()
        probe.bind(("127.0.0.1", 0))
        dead.append("127.0.0.1:{}".format(probe.getsockname()[1]))
        probe.close()
    proc = repro(
        ["run", *CAMPAIGN, "--dist", ",".join(dead), "--json"], workdir)
    check(proc.returncode == 0, "degraded campaign exited 0")
    check("degraded" in proc.stderr or "falling back" in proc.stderr,
          "operator was told about the fallback")
    check(verdicts(proc.stdout) == base,
          "degraded verdicts identical to the single-host run")


def main():
    root = tempfile.mkdtemp(prefix="repro-dist-chaos-", dir=os.getcwd())
    try:
        base = baseline(root)
        print("baseline: {} jobs".format(len(base)))
        scenario_kill_nine(root, base)
        scenario_severed_frame(root, base)
        scenario_degraded(root, base)
    finally:
        shutil.rmtree(root, ignore_errors=True)
    if FAILURES:
        print("{} scenario assertion(s) FAILED".format(len(FAILURES)))
        return 1
    print("all dist chaos scenarios passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
