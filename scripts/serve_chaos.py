#!/usr/bin/env python3
"""Chaos test for the serving daemon (`python -m repro serve`).

Asserts the three fault-tolerance guarantees docs/serving.md promises,
end to end over real HTTP against real daemon processes:

A. **kill -9 loses nothing** — a daemon under concurrent load is
   SIGKILLed mid-flight and restarted on the same journal; every
   accepted job must reach a terminal state (journal replay), and warm
   resubmits of settled work must be sub-100ms cache hits.
B. **circuit breakers** — a system whose workers always crash trips
   its breaker open (503 + Retry-After up front), and after the
   cool-down a half-open probe with a healthy worker closes it again.
C. **deadlines degrade, never hang** — a request with a tight
   ``deadline_ms`` settles quickly as a partial ``exhausted_budget``
   verdict instead of overrunning its deadline.

Run from the repo root (CI's serve-smoke job does):

    python scripts/serve_chaos.py

Exits 0 when every scenario holds, 1 with a FAIL line otherwise.
Stdlib only, like everything else in this repo.
"""

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")

FAILURES = []


def check(ok, label):
    line = "{}: {}".format("ok" if ok else "FAIL", label)
    print(line)
    if not ok:
        FAILURES.append(label)
    return ok


class Daemon:
    """One `repro serve` process bound to an ephemeral port."""

    def __init__(self, workdir, *extra_args):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC
        self.workdir = workdir
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0", *extra_args],
            cwd=workdir,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        line = self.proc.stdout.readline()
        if "serving on" not in line:
            rest = self.proc.stdout.read()
            raise RuntimeError("daemon failed to start: {}{}".format(line, rest))
        self.port = int(line.split("serving on ", 1)[1].split(" ")[0].rsplit(":", 1)[1])
        self.base = "http://127.0.0.1:{}".format(self.port)

    def request(self, method, path, body=None, timeout=30):
        data = json.dumps(body).encode() if body is not None else None
        req = urllib.request.Request(
            self.base + path, data=data, method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=timeout) as resp:
                return resp.status, json.loads(resp.read().decode()), dict(resp.headers)
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read().decode()), dict(exc.headers)

    def wait_done(self, job_id, timeout=60):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status, doc, _ = self.request("GET", "/v1/jobs/" + job_id)
            if status == 200 and doc.get("state") == "done":
                return doc
            time.sleep(0.05)
        raise RuntimeError("job {} not done within {}s".format(job_id, timeout))

    def sigkill(self):
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait()

    def sigterm(self, timeout=60):
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=timeout)

    def stop(self):
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait()


def scenario_crash_recovery(root):
    """A: SIGKILL under load; restart replays the journal; warm hits."""
    print("--- scenario A: kill -9 recovery + warm cache")
    workdir = os.path.join(root, "a")
    os.makedirs(workdir)
    args = ("--inline", "--workers", "2", "--journal", "j.jsonl",
            "--backend", "sqlite:verdicts.db")
    daemon = Daemon(workdir, *args)
    accepted = []
    try:
        # A mix of quick and slow jobs so the kill lands mid-flight.
        batch = (
            [{"kind": "analyze", "system": s} for s in ("rm", "relay", "chain")]
            + [{"kind": "check", "system": "rm", "params": {"seeds": 2, "steps": 60}}
               for _ in range(4)]
            + [{"kind": "check", "system": "relay", "params": {"seeds": 2, "steps": 60}}
               for _ in range(3)]
        )
        for body in batch:
            status, doc, _ = daemon.request("POST", "/v1/jobs", body)
            check(status in (200, 202), "submit accepted (got {})".format(status))
            accepted.append(doc["job_id"])
        time.sleep(0.4)  # let some finish, leave some in flight
        daemon.sigkill()
    finally:
        daemon.stop()

    daemon = Daemon(workdir, *args)  # same journal, same cache
    try:
        docs = {job_id: daemon.wait_done(job_id) for job_id in accepted}
        check(
            all(doc["state"] == "done" for doc in docs.values()),
            "all {} accepted jobs terminal after kill -9 + replay".format(len(accepted)),
        )
        check(
            any(doc.get("recovered") for doc in docs.values()),
            "at least one job was finished by journal replay",
        )
        # Warm resubmits: identical work settled above must come straight
        # from the verdict cache, fast.
        for body in batch[:3]:
            start = time.monotonic()
            status, doc, _ = daemon.request("POST", "/v1/jobs", body)
            elapsed_ms = (time.monotonic() - start) * 1000
            cached = doc.get("result", {}).get("cached")
            check(
                status == 200 and cached and elapsed_ms < 100,
                "warm resubmit {}/{} cache hit in {:.1f}ms".format(
                    body["kind"], body["system"], elapsed_ms),
            )
        code = daemon.sigterm()
        check(code == 0, "graceful drain exits 0 (got {})".format(code))
    finally:
        daemon.stop()


def scenario_circuit_breaker(root):
    """B: always-crashing workers trip the breaker; probe recovers it."""
    print("--- scenario B: circuit breaker trip + half-open recovery")
    workdir = os.path.join(root, "b")
    os.makedirs(workdir)
    daemon = Daemon(
        workdir, "--workers", "1", "--journal", "j.jsonl",
        "--breaker-threshold", "2", "--breaker-cooldown", "2",
        "--timeout", "30",
    )
    try:
        # chaos=crash fires on attempt 0; max_retries 0 makes each job a
        # terminal crash classification.
        for _ in range(2):
            status, doc, _ = daemon.request(
                "POST", "/v1/jobs",
                {"kind": "analyze", "system": "relay", "chaos": "crash",
                 "max_retries": 0},
            )
            check(status == 202, "crash-chaos job accepted")
            doc = daemon.wait_done(doc["job_id"])
            check(
                doc["result"]["status"] == "crash",
                "chaos job classified crash (got {})".format(doc["result"]["status"]),
            )
        status, doc, headers = daemon.request(
            "POST", "/v1/jobs", {"kind": "analyze", "system": "relay"})
        check(status == 503, "breaker open rejects up front (got {})".format(status))
        check("Retry-After" in headers, "503 carries Retry-After")
        _, stats, _ = daemon.request("GET", "/v1/stats")
        check(
            stats["breakers"]["relay"]["state"] == "open",
            "stats report breaker open",
        )
        # Other systems are unaffected by relay's quarantine.
        status, doc, _ = daemon.request("POST", "/v1/jobs",
                                        {"kind": "analyze", "system": "rm"})
        check(status in (200, 202), "other systems still admitted")
        if status == 202:
            daemon.wait_done(doc["job_id"])

        time.sleep(2.2)  # past the cool-down: next request is the probe
        status, doc, _ = daemon.request("POST", "/v1/jobs",
                                        {"kind": "analyze", "system": "relay"})
        check(status in (200, 202), "half-open probe admitted (got {})".format(status))
        if status == 202:
            doc = daemon.wait_done(doc["job_id"])
            check(doc["result"]["ok"], "probe succeeded")
        _, stats, _ = daemon.request("GET", "/v1/stats")
        breaker = stats["breakers"]["relay"]
        check(breaker["state"] == "closed", "breaker closed after probe")
        check(breaker["trips"] >= 1, "breaker recorded its trip")
    finally:
        daemon.stop()


def scenario_deadlines(root):
    """C: tight deadline_ms settles as a partial verdict, fast."""
    print("--- scenario C: deadlines degrade to exhausted_budget")
    workdir = os.path.join(root, "c")
    os.makedirs(workdir)
    daemon = Daemon(workdir, "--inline", "--workers", "1", "--journal", "j.jsonl")
    try:
        start = time.monotonic()
        status, doc, _ = daemon.request(
            "POST", "/v1/jobs",
            {"kind": "check", "system": "rm",
             "params": {"seeds": 20, "steps": 400}, "deadline_ms": 300},
        )
        check(status == 202, "deadline job accepted")
        doc = daemon.wait_done(doc["job_id"], timeout=15)
        elapsed = time.monotonic() - start
        result = doc["result"]
        check(
            result["exhausted_budget"] and not result["conclusive"],
            "tight deadline yields a partial exhausted_budget verdict "
            "(status {})".format(result["status"]),
        )
        check(
            elapsed < 5.0,
            "deadline job settled in {:.2f}s, not at its own pace".format(elapsed),
        )
        code = daemon.sigterm()
        check(code == 0, "drain exits 0 (got {})".format(code))
    finally:
        daemon.stop()


def main():
    root = tempfile.mkdtemp(prefix="repro-serve-chaos-", dir=os.getcwd())
    try:
        scenario_crash_recovery(root)
        scenario_circuit_breaker(root)
        scenario_deadlines(root)
    finally:
        shutil.rmtree(root, ignore_errors=True)
    if FAILURES:
        print("{} scenario assertion(s) FAILED".format(len(FAILURES)))
        return 1
    print("all serve chaos scenarios passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
